(* Network chaos layer: the netem injector's determinism and fault
   shapes, the defensive-RPC envelope on the wire, node-side request-id
   dedup, retry idempotence under drops + duplicates, hedging and
   route-around under gray failures, catch-up donor failover, and the
   partition-aware history audit. *)

module Ring = Cluster.Ring
module Node = Cluster.Node
module Router = Cluster.Router
module Detector = Cluster.Detector
module Membership = Cluster.Membership
module Run = Cluster.Run
module Netem = Fault.Netem
module Proto = Service.Proto
module Clock = Pmem_sim.Clock

let key i = Workload.Keyspace.key_of_index i

let tiny =
  { Harness.Stores.shards = 4;
    memtable_slots = 64;
    load_keys = 4000;
    sweep_ops = 6000;
    threads = [ 1 ];
    vlen = 8 }

let mk_cluster ?(vshards = 32) ?policy ?netem ?seed ~n ~replicas ~wq ~rq () =
  let nodes =
    Array.init n (fun i ->
        let spec =
          Harness.Stores.chameleon ~name:(Printf.sprintf "n%d" i) tiny
        in
        Cluster.Node.create ~id:i (spec.Harness.Stores.make ()))
  in
  let ring = Ring.create ~vshards ~replicas ~nodes:(List.init n Fun.id) () in
  ( ring,
    nodes,
    Router.create ?policy ?netem ?seed ~write_quorum:wq ~read_quorum:rq ring
      nodes )

(* -------------------------------- netem ---------------------------------- *)

let test_netem_deterministic_loss () =
  let mk () =
    let nm = Netem.create ~seed:7 () in
    Netem.add_rule nm (Netem.Loss 0.1);
    nm
  in
  let a = mk () and b = mk () in
  let n = 10_000 in
  let delivered = ref 0 in
  for i = 0 to n - 1 do
    let now = float_of_int i *. 1_000.0 in
    let fa =
      Netem.send a ~now ~src:Netem.Client ~dst:(Netem.Node 0) ~net_ns:2000.0
    and fb =
      Netem.send b ~now ~src:Netem.Client ~dst:(Netem.Node 0) ~net_ns:2000.0
    in
    Alcotest.(check (list (float 0.0))) "same fate per seed" fa fb;
    (match fa with
    | [] -> ()
    | [ arr ] ->
        incr delivered;
        Alcotest.(check (float 0.0)) "base hop cost" (now +. 2000.0) arr
    | _ -> Alcotest.fail "loss-only rule cannot duplicate")
  done;
  let drops = n - !delivered in
  Alcotest.(check bool)
    (Printf.sprintf "drop count near 10%% (%d/%d)" drops n)
    true
    (drops > 800 && drops < 1200);
  Alcotest.(check int) "stats: sent" n (Netem.sent a);
  Alcotest.(check int) "stats: dropped" drops (Netem.dropped a)

let test_netem_duplicate_reorder () =
  let nm = Netem.create ~seed:3 () in
  Netem.add_rule nm (Netem.Duplicate 0.3);
  Netem.add_rule nm (Netem.Reorder { frac = 0.2; extra_ns = 50_000.0 });
  let n = 5_000 in
  let dups = ref 0 in
  for i = 0 to n - 1 do
    let now = float_of_int i *. 1_000.0 in
    let arrivals =
      Netem.send nm ~now ~src:Netem.Client ~dst:(Netem.Node 1) ~net_ns:2000.0
    in
    Alcotest.(check bool) "never lost" true (arrivals <> []);
    (match arrivals with
    | [ _; _ ] -> incr dups
    | [ _ ] -> ()
    | _ -> Alcotest.fail "at most one duplicate per frame");
    let rec ascending = function
      | a :: (b :: _ as rest) -> a <= b && ascending rest
      | _ -> true
    in
    Alcotest.(check bool) "arrivals ascending" true (ascending arrivals);
    List.iter
      (fun arr ->
        Alcotest.(check bool) "no arrival before the hop" true
          (arr >= now +. 2000.0))
      arrivals
  done;
  Alcotest.(check bool)
    (Printf.sprintf "duplicate count near 30%% (%d/%d)" !dups n)
    true
    (!dups > 1200 && !dups < 1800);
  Alcotest.(check int) "stats: duplicated" !dups (Netem.duplicated nm);
  Alcotest.(check bool) "stats: delayed (reorder holds)" true
    (Netem.delayed nm > 0)

let test_netem_partition_direction () =
  let nm = Netem.create ~seed:1 () in
  Netem.add_rule nm ~from_ns:100.0 ~until_ns:200.0
    (Netem.Partition
       { a = [ Netem.Node 0 ]; b = [ Netem.Node 1 ]; symmetric = false });
  let sends now src dst =
    Netem.send nm ~now ~src ~dst ~net_ns:10.0 <> []
  in
  (* inside the window: a -> b cut, b -> a (the asym gray shape) delivered *)
  Alcotest.(check bool) "a->b cut" false (sends 150.0 (Netem.Node 0) (Netem.Node 1));
  Alcotest.(check bool) "b->a delivered" true
    (sends 150.0 (Netem.Node 1) (Netem.Node 0));
  Alcotest.(check bool) "bystander unaffected" true
    (sends 150.0 Netem.Client (Netem.Node 1));
  (* reachable is pure and matches *)
  Alcotest.(check bool) "reachable a->b" false
    (Netem.reachable nm ~now:150.0 ~src:(Netem.Node 0) ~dst:(Netem.Node 1));
  Alcotest.(check bool) "reachable b->a" true
    (Netem.reachable nm ~now:150.0 ~src:(Netem.Node 1) ~dst:(Netem.Node 0));
  (* outside the window: healed *)
  Alcotest.(check bool) "before the window" true
    (sends 50.0 (Netem.Node 0) (Netem.Node 1));
  Alcotest.(check bool) "after the window" true
    (sends 250.0 (Netem.Node 0) (Netem.Node 1));
  Alcotest.(check bool) "partition drops counted" true
    (Netem.partition_dropped nm > 0);
  (* symmetric cuts both directions *)
  let sm = Netem.create ~seed:1 () in
  Netem.add_rule sm
    (Netem.Partition
       { a = [ Netem.Node 0 ]; b = [ Netem.Node 1 ]; symmetric = true });
  Alcotest.(check bool) "sym a->b cut" false
    (Netem.reachable sm ~now:0.0 ~src:(Netem.Node 0) ~dst:(Netem.Node 1));
  Alcotest.(check bool) "sym b->a cut" false
    (Netem.reachable sm ~now:0.0 ~src:(Netem.Node 1) ~dst:(Netem.Node 0))

let test_netem_fail_slow () =
  let nm = Netem.create ~seed:1 () in
  Netem.add_rule nm ~from_ns:1_000.0 ~until_ns:2_000.0
    (Netem.Fail_slow { node = 1; factor = 10.0 });
  Alcotest.(check (float 0.0)) "inside the window" 10.0
    (Netem.slow_factor nm ~now:1_500.0 ~node:1);
  Alcotest.(check (float 0.0)) "other node unaffected" 1.0
    (Netem.slow_factor nm ~now:1_500.0 ~node:0);
  Alcotest.(check (float 0.0)) "before the window" 1.0
    (Netem.slow_factor nm ~now:500.0 ~node:1);
  Alcotest.(check (float 0.0)) "after the window" 1.0
    (Netem.slow_factor nm ~now:2_500.0 ~node:1)

(* ------------------------------ wire format ------------------------------- *)

let test_proto_tagged_roundtrip () =
  let check_roundtrip hdr req =
    let d = Proto.decoder () in
    Proto.feed_bytes d (Proto.encode_tagged hdr req);
    (match Proto.next d with
    | `Msg (Proto.Tagged (h, r)) ->
        Alcotest.(check int) "req id" hdr.Proto.h_req_id h.Proto.h_req_id;
        Alcotest.(check (float 0.0))
          "deadline" hdr.Proto.h_deadline_ns h.Proto.h_deadline_ns;
        Alcotest.(check bool) "request body" true (r = req)
    | _ -> Alcotest.fail "expected one Tagged frame");
    match Proto.next d with
    | `Await -> ()
    | _ -> Alcotest.fail "trailing bytes after the frame"
  in
  check_roundtrip
    { Proto.h_req_id = 42; h_deadline_ns = 500_000.0 }
    (Proto.Get (key 7));
  check_roundtrip
    { Proto.h_req_id = 0xFFFF_FFF; h_deadline_ns = infinity }
    (Proto.Put (key 9, Bytes.create 8))

(* ----------------------------- node-side dedup ---------------------------- *)

let test_node_req_id_dedup () =
  let spec = Harness.Stores.chameleon ~name:"dedup" tiny in
  let n = Node.create ~id:0 (spec.Harness.Stores.make ()) in
  let c = Node.rx n in
  Alcotest.(check bool) "first delivery applies" true
    (Node.apply ~req_id:7 n c ~stamp:1 (key 1) (Node.Put 8));
  Alcotest.(check bool) "replayed req id is skipped" false
    (Node.apply ~req_id:7 n c ~stamp:1 (key 1) (Node.Put 8));
  (* same req id even with a different (higher) stamp: still a replay *)
  Alcotest.(check bool) "req id wins over stamp" false
    (Node.apply ~req_id:7 n c ~stamp:9 (key 1) (Node.Put 8));
  Alcotest.(check int) "dedup hits counted" 2 (Node.dedup_hits n);
  Alcotest.(check (option int)) "version unchanged by replays" (Some 1)
    (Node.version n (key 1));
  (* a fresh id with a stale stamp falls to the durable stamp guard *)
  Alcotest.(check bool) "stale stamp skipped" false
    (Node.apply ~req_id:8 n c ~stamp:1 (key 1) (Node.Put 8));
  Alcotest.(check bool) "fresh id, fresh stamp applies" true
    (Node.apply ~req_id:9 n c ~stamp:2 (key 1) (Node.Put 8))

(* --------------------------- retry idempotence ---------------------------- *)

(* A write acked after k retries, with frames dropped and duplicated on
   every link, applies exactly once on every owner: the owners agree on
   the acked stamp, replayed deliveries land in the dedup table, and the
   whole schedule is deterministic per seed. *)
let retry_run seed =
  let nm = Netem.create ~seed () in
  Netem.add_rule nm (Netem.Loss 0.25);
  Netem.add_rule nm (Netem.Duplicate 0.25);
  Netem.add_rule nm (Netem.Reorder { frac = 0.1; extra_ns = 20_000.0 });
  let ring, nodes, router =
    mk_cluster ~policy:Router.defensive ~netem:nm ~seed ~n:3 ~replicas:2
      ~wq:2 ~rq:1 ()
  in
  let acked = ref [] in
  let at = ref 0.0 in
  for i = 0 to 299 do
    let o = Router.submit_write router ~at:!at ~bytes:26 (key i) (Node.Put 8) in
    at := !at +. 5_000.0;
    if o.Router.reply = Proto.Ok then acked := (i, o.Router.stamp) :: !acked
  done;
  (ring, nodes, router, List.rev !acked)

let test_retry_idempotence () =
  List.iter
    (fun seed ->
      let ring, nodes, router, acked = retry_run seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: most writes acked (%d/300)" seed
           (List.length acked))
        true
        (List.length acked > 250);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: drops forced retries" seed)
        true (Router.retries router > 0);
      (* exactly-once on every owner: each acked key holds exactly its
         acked stamp on all owners, despite duplicated and retried
         deliveries of the same frame *)
      List.iter
        (fun (i, stamp) ->
          List.iter
            (fun nid ->
              Alcotest.(check (option int))
                (Printf.sprintf "seed %d: key %d owner %d at acked stamp"
                   seed i nid)
                (Some stamp)
                (Node.version nodes.(nid) (key i)))
            (Ring.owners_of_key ring (key i)))
        acked;
      let dedup =
        Array.fold_left (fun acc n -> acc + Node.dedup_hits n) 0 nodes
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: replays hit the dedup table (%d)" seed dedup)
        true (dedup > 0);
      (* deterministic: the same seed replays the same schedule *)
      let _, nodes', router', acked' = retry_run seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: acked set replays identically" seed)
        true
        (acked = acked');
      Alcotest.(check int)
        (Printf.sprintf "seed %d: retry count replays identically" seed)
        (Router.retries router)
        (Router.retries router');
      Alcotest.(check int)
        (Printf.sprintf "seed %d: dedup hits replay identically" seed)
        dedup
        (Array.fold_left (fun acc n -> acc + Node.dedup_hits n) 0 nodes'))
    [ 1; 11; 101 ]

(* --------------------------- hedging / detector --------------------------- *)

(* find a key whose owner preference order starts at [first] *)
let key_led_by ring ~first ~n_owners =
  let rec go i =
    if i > 100_000 then Alcotest.fail "no key led by wanted owner"
    else
      match Ring.owners_of_key ring (key i) with
      | o :: _ as owners when o = first && List.length owners = n_owners ->
          (key i, owners)
      | _ -> go (i + 1)
  in
  go 0

let test_hedged_read_beats_fail_slow () =
  let ring, _, router =
    mk_cluster ~policy:Router.defensive ~n:3 ~replicas:2 ~wq:2 ~rq:1 ()
  in
  let slow = 1 in
  let k, _ = key_led_by ring ~first:slow ~n_owners:2 in
  (* seed the value over a clean network so the detector stays calm *)
  let o = Router.submit_write router ~at:0.0 ~bytes:26 k (Node.Put 8) in
  Alcotest.(check bool) "write acked" true (o.Router.reply = Proto.Ok);
  let nm = Netem.create ~seed:5 () in
  Netem.add_rule nm (Netem.Fail_slow { node = slow; factor = 50.0 });
  Router.set_netem router (Some nm);
  let r = Router.submit_read router ~at:(o.Router.finish +. 10_000.0) ~bytes:14 k in
  (match r.Router.reply with
  | Proto.Value _ | Proto.Hit _ -> ()
  | rep ->
      Format.kasprintf (fun s -> Alcotest.fail s) "read failed: %a"
        Proto.pp_reply rep);
  Alcotest.(check bool) "slow primary triggered a hedge" true
    (Router.hedges router >= 1);
  Alcotest.(check bool) "the spare replica won" true
    (Router.hedge_wins router >= 1);
  Alcotest.(check int) "the answer is quorum-fresh" o.Router.stamp
    r.Router.stamp

let test_detector_accrual () =
  let d = Detector.create ~n:2 () in
  Alcotest.(check bool) "starts unsuspected" false (Detector.suspected d ~node:0);
  for _ = 1 to 3 do
    Detector.observe_timeout d ~node:0
  done;
  Alcotest.(check bool) "timeouts accrue to suspicion" true
    (Detector.suspected d ~node:0);
  Alcotest.(check bool) "the other node is untouched" false
    (Detector.suspected d ~node:1);
  Alcotest.(check bool) "crossings counted" true (Detector.suspicions d >= 1);
  for _ = 1 to 8 do
    Detector.observe_ack d ~node:0 ~rtt_ns:5_000.0
  done;
  Alcotest.(check bool) "acks decay the score" false
    (Detector.suspected d ~node:0);
  Detector.observe_timeout d ~node:1;
  Detector.clear d ~node:1;
  Alcotest.(check (float 0.0)) "clear resets the score" 0.0
    (Detector.score d ~node:1)

let test_route_around_partitioned_owner () =
  let nm = Netem.create ~seed:9 () in
  let ring, _, router =
    mk_cluster ~policy:Router.defensive ~netem:nm ~seed:9 ~n:3 ~replicas:2
      ~wq:2 ~rq:1 ()
  in
  let cut = 0 in
  let k, _ = key_led_by ring ~first:cut ~n_owners:2 in
  let o = Router.submit_write router ~at:0.0 ~bytes:26 k (Node.Put 8) in
  Alcotest.(check bool) "write acked" true (o.Router.reply = Proto.Ok);
  (* cut the client off from the preferred owner: probes to it time out,
     the hedge answers from the spare, and the accrued suspicion makes
     later reads route around the cut owner up front *)
  Netem.add_rule nm ~from_ns:(o.Router.finish +. 1.0)
    (Netem.Partition
       { a = [ Netem.Client ]; b = [ Netem.Node cut ]; symmetric = true });
  let at = ref (o.Router.finish +. 10_000.0) in
  for i = 1 to 8 do
    let r = Router.submit_read router ~at:!at ~bytes:14 k in
    at := !at +. 5_000_000.0;
    match r.Router.reply with
    | Proto.Value _ | Proto.Hit _ -> ()
    | rep ->
        Format.kasprintf
          (fun s -> Alcotest.fail s)
          "read %d failed: %a" i Proto.pp_reply rep
  done;
  Alcotest.(check bool) "cut owner is suspected" true
    (Detector.suspected (Router.detector router) ~node:cut);
  Alcotest.(check bool) "reads routed around it" true
    (Router.routed_around router >= 1);
  Alcotest.(check int) "no read went unavailable" 0 (Router.unavailable router)

(* ----------------------------- catch-up donors ---------------------------- *)

let test_catchup_survives_donor_crash () =
  let ring, nodes, router = mk_cluster ~n:4 ~replicas:3 ~wq:2 ~rq:1 () in
  let joiner = 3 in
  let acked : (Kv_common.Types.key, int) Hashtbl.t = Hashtbl.create 512 in
  let at = ref 0.0 in
  let write i =
    let o = Router.submit_write router ~at:!at ~bytes:26 (key i) (Node.Put 8) in
    at := max (!at +. 2_000.0) o.Router.finish;
    Alcotest.(check bool) "write acked" true (o.Router.reply = Proto.Ok);
    Hashtbl.replace acked (key i) o.Router.stamp
  in
  for i = 0 to 299 do
    write i
  done;
  Membership.kill ~seed:42 router joiner;
  (* the delta the joiner must recover, acked by the surviving quorum *)
  for i = 0 to 299 do
    write i
  done;
  let cu = Membership.start_rejoin router ~now:!at joiner in
  let now = ref (!at +. 50_000.0) in
  Alcotest.(check bool) "first chunk streams" false
    (Membership.step router cu ~now:!now ~chunk:8);
  (* crash the donor mid-stream: peers are drained in id order, so the
     cursor is inside node 0's log *)
  Membership.kill ~seed:43 router 0;
  let steps = ref 0 in
  while
    now := !now +. 50_000.0;
    incr steps;
    if !steps > 10_000 then Alcotest.fail "catch-up never finished";
    not (Membership.step router cu ~now:!now ~chunk:64)
  do
    ()
  done;
  Alcotest.(check bool) "the crashed donor was abandoned" true
    (Membership.switches cu >= 1);
  Alcotest.(check bool) "joiner is readable again" true
    (Node.status nodes.(joiner) = Node.Up);
  (* no acked write the joiner owns was lost to the donor crash *)
  Hashtbl.iter
    (fun k stamp ->
      if List.mem joiner (Ring.owners_of_key ring k) then
        match Node.version nodes.(joiner) k with
        | Some v when v >= stamp -> ()
        | v ->
            Alcotest.failf "key %Ld: acked stamp %d, joiner has %s" k stamp
              (match v with Some v -> string_of_int v | None -> "nothing"))
    acked

let test_catchup_waits_out_partition () =
  let nm = Netem.create ~seed:4 () in
  let ring, nodes, router =
    mk_cluster ~netem:nm ~n:3 ~replicas:2 ~wq:2 ~rq:1 ()
  in
  let joiner = 2 in
  let acked : (Kv_common.Types.key, int) Hashtbl.t = Hashtbl.create 512 in
  let at = ref 0.0 in
  for i = 0 to 199 do
    let o = Router.submit_write router ~at:!at ~bytes:26 (key i) (Node.Put 8) in
    at := max (!at +. 2_000.0) o.Router.finish;
    Alcotest.(check bool) "write acked" true (o.Router.reply = Proto.Ok);
    Hashtbl.replace acked (key i) o.Router.stamp
  done;
  Membership.kill ~seed:44 router joiner;
  let cu = Membership.start_rejoin router ~now:!at joiner in
  (* both donors partitioned from the joiner: catch-up must stall, not
     finish with a gap *)
  let heal = !at +. 10_000_000.0 in
  Netem.add_rule nm ~until_ns:heal
    (Netem.Partition
       { a = [ Netem.Node 0; Netem.Node 1 ];
         b = [ Netem.Node joiner ];
         symmetric = true });
  let now = ref (!at +. 1.0) in
  for _ = 1 to 5 do
    Alcotest.(check bool) "stalled behind the partition" false
      (Membership.step router cu ~now:!now ~chunk:64);
    now := !now +. 100_000.0
  done;
  Alcotest.(check bool) "stalls counted" true (Membership.stalls cu >= 5);
  Alcotest.(check bool) "still syncing" true
    (Node.status nodes.(joiner) = Node.Syncing);
  (* heal: catch-up resumes and completes *)
  now := heal +. 1.0;
  let steps = ref 0 in
  while
    incr steps;
    if !steps > 10_000 then Alcotest.fail "catch-up never finished";
    let fin = Membership.step router cu ~now:!now ~chunk:64 in
    now := !now +. 50_000.0;
    not fin
  do
    ()
  done;
  Alcotest.(check bool) "joiner is readable after the heal" true
    (Node.status nodes.(joiner) = Node.Up);
  Hashtbl.iter
    (fun k stamp ->
      if List.mem joiner (Ring.owners_of_key ring k) then
        match Node.version nodes.(joiner) k with
        | Some v when v >= stamp -> ()
        | _ -> Alcotest.failf "key %Ld: acked stamp %d missing after heal" k stamp)
    acked

let test_catchup_switches_to_reachable_donor () =
  let nm = Netem.create ~seed:6 () in
  let _, nodes, router = mk_cluster ~netem:nm ~n:3 ~replicas:2 ~wq:2 ~rq:1 () in
  let joiner = 2 in
  let at = ref 0.0 in
  for i = 0 to 199 do
    let o = Router.submit_write router ~at:!at ~bytes:26 (key i) (Node.Put 8) in
    at := max (!at +. 2_000.0) o.Router.finish
  done;
  Membership.kill ~seed:45 router joiner;
  let cu = Membership.start_rejoin router ~now:!at joiner in
  (* stream a first chunk from donor 0, then cut only that link for a
     while: the catch-up must swap to donor 1 and keep streaming, come
     back for the rest of donor 0 after the heal, and never declare the
     joiner readable with donor 0 undrained *)
  let now = ref (!at +. 1.0) in
  Alcotest.(check bool) "first chunk streams" false
    (Membership.step router cu ~now:!now ~chunk:8);
  let heal = !now +. 5_000_000.0 in
  Netem.add_rule nm ~from_ns:!now ~until_ns:heal
    (Netem.Partition
       { a = [ Netem.Node 0 ]; b = [ Netem.Node joiner ]; symmetric = true });
  let steps = ref 0 in
  while
    now := !now +. 50_000.0;
    incr steps;
    if !steps > 10_000 then Alcotest.fail "catch-up never finished";
    not (Membership.step router cu ~now:!now ~chunk:64)
  do
    ()
  done;
  Alcotest.(check bool) "partitioned donor was abandoned" true
    (Membership.switches cu >= 1);
  Alcotest.(check bool)
    "donor 1 drained during the cut, then waited for the heal" true
    (Membership.stalls cu >= 1);
  Alcotest.(check bool) "finished only after the heal" true (!now >= heal);
  Alcotest.(check bool) "joiner is readable again" true
    (Node.status nodes.(joiner) = Node.Up)

(* ------------------------------ history audit ----------------------------- *)

let w ~at ~fin ~stamp ~acked k =
  Run.H_write { hw_at = at; hw_fin = fin; hw_key = k; hw_stamp = stamp;
                hw_acked = acked }

let r ~at ~fin ~stamp ~ok k =
  Run.H_read { hr_at = at; hr_fin = fin; hr_key = k; hr_stamp = stamp;
               hr_ok = ok }

let test_history_check_clean () =
  let k = key 1 in
  let checked, violations =
    Run.history_check
      [ w ~at:0.0 ~fin:10.0 ~stamp:1 ~acked:true k;
        r ~at:20.0 ~fin:25.0 ~stamp:1 ~ok:true k ]
  in
  Alcotest.(check int) "one read checked" 1 checked;
  Alcotest.(check (list string)) "clean" [] violations;
  (* a read overlapping a write may legally see either version *)
  let overlapping stamp =
    Run.history_check
      [ w ~at:0.0 ~fin:10.0 ~stamp:1 ~acked:true k;
        w ~at:20.0 ~fin:30.0 ~stamp:2 ~acked:true k;
        r ~at:25.0 ~fin:26.0 ~stamp ~ok:true k ]
  in
  Alcotest.(check (list string)) "overlap: old version legal" []
    (snd (overlapping 1));
  Alcotest.(check (list string)) "overlap: new version legal" []
    (snd (overlapping 2));
  (* failed reads and unacked writes constrain nothing *)
  let checked, violations =
    Run.history_check
      [ w ~at:0.0 ~fin:10.0 ~stamp:1 ~acked:false k;
        r ~at:20.0 ~fin:25.0 ~stamp:(-1) ~ok:false k ]
  in
  Alcotest.(check int) "err read not checked" 0 checked;
  Alcotest.(check (list string)) "err read not flagged" [] violations

let test_history_check_flags_stale_and_phantom () =
  let k = key 2 in
  (* stale: the read started after stamp 2 was acked, yet answered 1 *)
  let _, stale =
    Run.history_check
      [ w ~at:0.0 ~fin:10.0 ~stamp:1 ~acked:true k;
        w ~at:12.0 ~fin:20.0 ~stamp:2 ~acked:true k;
        r ~at:30.0 ~fin:35.0 ~stamp:1 ~ok:true k ]
  in
  Alcotest.(check int) "stale read flagged" 1 (List.length stale);
  (* phantom: no issued write ever carried stamp 5 *)
  let _, phantom =
    Run.history_check
      [ w ~at:0.0 ~fin:10.0 ~stamp:1 ~acked:true k;
        r ~at:20.0 ~fin:25.0 ~stamp:5 ~ok:true k ]
  in
  Alcotest.(check int) "phantom version flagged" 1 (List.length phantom);
  (* acked stamps must be monotone per key *)
  let _, mono =
    Run.history_check
      [ w ~at:0.0 ~fin:10.0 ~stamp:2 ~acked:true k;
        w ~at:12.0 ~fin:20.0 ~stamp:1 ~acked:true k ]
  in
  Alcotest.(check int) "non-monotone ack flagged" 1 (List.length mono)

(* ------------------------------- end to end ------------------------------- *)

let test_chaos_cell_end_to_end () =
  let cell =
    Harness.Cluster_bench.chaos_cell ~seed:1 ~loss:0.005
      ~partition:Harness.Cluster_bench.P_asym ~hedge:true tiny
  in
  Alcotest.(check bool) "issued a real workload" true (cell.cc_issued > 1000);
  Alcotest.(check bool) "mostly available" true (cell.cc_availability > 0.5);
  Alcotest.(check bool) "history audit ran" true (cell.cc_reads_checked > 0);
  Alcotest.(check (list string)) "no stale or phantom reads" []
    cell.cc_violations;
  Alcotest.(check int) "no acked write lost" 0
    (List.length cell.cc_mismatches);
  Alcotest.(check bool) "cell is clean" true
    (Harness.Cluster_bench.cell_clean cell)

let () =
  Alcotest.run "chaos"
    [ ( "netem",
        [ Alcotest.test_case "deterministic seeded loss" `Quick
            test_netem_deterministic_loss;
          Alcotest.test_case "duplicate and reorder shapes" `Quick
            test_netem_duplicate_reorder;
          Alcotest.test_case "partition direction and windows" `Quick
            test_netem_partition_direction;
          Alcotest.test_case "fail-slow factor" `Quick test_netem_fail_slow ] );
      ( "rpc",
        [ Alcotest.test_case "tagged frame roundtrip" `Quick
            test_proto_tagged_roundtrip;
          Alcotest.test_case "node request-id dedup" `Quick
            test_node_req_id_dedup;
          Alcotest.test_case "retry idempotence at seeds 1/11/101" `Quick
            test_retry_idempotence;
          Alcotest.test_case "hedged read beats a fail-slow primary" `Quick
            test_hedged_read_beats_fail_slow;
          Alcotest.test_case "detector accrual and decay" `Quick
            test_detector_accrual;
          Alcotest.test_case "route around a partitioned owner" `Quick
            test_route_around_partitioned_owner ] );
      ( "catchup",
        [ Alcotest.test_case "survives a donor crash" `Quick
            test_catchup_survives_donor_crash;
          Alcotest.test_case "waits out a full partition" `Quick
            test_catchup_waits_out_partition;
          Alcotest.test_case "switches to a reachable donor" `Quick
            test_catchup_switches_to_reachable_donor ] );
      ( "audit",
        [ Alcotest.test_case "clean histories pass" `Quick
            test_history_check_clean;
          Alcotest.test_case "stale and phantom reads flagged" `Quick
            test_history_check_flags_stale_and_phantom;
          Alcotest.test_case "chaos cell end to end" `Quick
            test_chaos_cell_end_to_end ] ) ]
