module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Cost_model = Pmem_sim.Cost_model
module Vlog = Kv_common.Vlog
module Fault_point = Kv_common.Fault_point
module Store_intf = Kv_common.Store_intf
module Config = Chameleondb.Config
module Checker = Fault.Checker
module Sweep = Fault.Sweep

let unit = Cost_model.optane.Cost_model.write_unit

(* ------------------------- Torn writes: device level ---------------------- *)

let test_device_torn_crash () =
  let dev = Device.create Cost_model.optane in
  let raw = Device.alloc dev 1024 in
  (* operate on a unit-aligned 512 B window: exactly two write units *)
  let off = (raw + unit - 1) / unit * unit in
  let clock = Clock.create () in
  Device.write_bytes dev clock ~off (Bytes.make 512 'a');
  Device.persist dev clock ~off ~len:512;
  Device.write_bytes dev clock ~off (Bytes.make 512 'b');
  (* no persist: the 'b' write is in flight; keep only the first unit *)
  Device.set_tear dev (Some (fun x -> x = off));
  Device.crash dev;
  Device.set_tear dev None;
  let b = Device.peek_bytes dev ~off ~len:512 in
  Alcotest.(check char) "kept unit survives" 'b' (Bytes.get b 0);
  Alcotest.(check char) "kept unit survives (end)" 'b' (Bytes.get b (unit - 1));
  Alcotest.(check char) "torn unit reverts" 'a' (Bytes.get b unit);
  Alcotest.(check char) "torn unit reverts (end)" 'a' (Bytes.get b 511)

(* -------------------------- Torn writes: vlog level ----------------------- *)

let torn_vlog keep =
  let dev = Device.create Cost_model.optane in
  let v = Vlog.create dev in
  let clock = Clock.create () in
  for i = 0 to 19 do
    ignore (Vlog.append v clock (Int64.of_int i) ~vlen:8)
  done;
  Vlog.flush v clock;
  for i = 20 to 59 do
    ignore (Vlog.append v clock (Int64.of_int i) ~vlen:8)
  done;
  let base = Vlog.bytes_upto v 20 in
  Device.set_tear dev (Some (keep ~base));
  Vlog.crash v;
  Device.set_tear dev None;
  v

let test_vlog_torn_batch () =
  (* all units of the unpersisted batch survive: the whole batch does *)
  let v = torn_vlog (fun ~base:_ _ -> true) in
  Alcotest.(check int) "all survive" 60 (Vlog.persisted v);
  (* no unit survives: the log truncates at the flush watermark *)
  let v = torn_vlog (fun ~base:_ _ -> false) in
  Alcotest.(check int) "none survive" 20 (Vlog.persisted v);
  (* only the first two units past the watermark survive: the surviving
     prefix is the longest run of whole 24 B entries inside 512 B *)
  let v = torn_vlog (fun ~base x -> x < base + (2 * unit)) in
  Alcotest.(check int) "prefix of whole entries" (20 + ((2 * unit) / 24))
    (Vlog.persisted v);
  for i = 0 to Vlog.persisted v - 1 do
    Alcotest.(check int64) "surviving key readable" (Int64.of_int i)
      (Vlog.key_at v i)
  done

(* ------------------------------ Checker cases ----------------------------- *)

let tiny = Harness.Stores.quick

let six_stores () =
  List.map
    (fun spec -> (spec.Harness.Stores.name, spec.Harness.Stores.make))
    (Harness.Stores.all tiny)

let test_checker_clean_run () =
  List.iter
    (fun (name, make) ->
      let o = Checker.run_case ~make ~ops:2_000 ~universe:200 ~seed:7 () in
      Alcotest.(check bool) (name ^ ": no crash") false o.Checker.crashed;
      Alcotest.(check (list string)) (name ^ ": clean") [] o.Checker.violations)
    (six_stores ())

let test_checker_crash_all_stores () =
  List.iter
    (fun (name, make) ->
      (* stores differ wildly in persist-event volume (Dram-Hash only
         persists log batches), so pick a mid-run crash point from the
         profiled counts instead of a fixed offset *)
      let counts = Checker.profile ~make ~ops:3_000 ~universe:300 ~seed:11 () in
      let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
      Alcotest.(check bool) (name ^ ": has persist events") true (total > 0);
      let o =
        Checker.run_case ~make ~ops:3_000 ~universe:300
          ~crash_after:(total / 2) ~seed:11 ()
      in
      Alcotest.(check bool) (name ^ ": crash fired") true o.Checker.crashed;
      Alcotest.(check (list string))
        (name ^ ": no violations") [] o.Checker.violations)
    (six_stores ())

(* ----------------------- Crash during recovery ---------------------------- *)

(* A Write-Intensive-Mode store with a cramped ABI: the recovery replay of
   the long log tail overflows MemTables and forces last-level compactions,
   i.e. durable writes DURING recovery — exactly where the second crash
   must land. *)
let wim_make () =
  let cfg =
    { Config.default with
      Config.shards = 2;
      memtable_slots = 32;
      levels = 2;
      ratio = 2;
      abi_slots_factor = 2;
      write_intensive = true }
  in
  Chameleondb.Store.store (Chameleondb.Store.create ~cfg ())

let test_recovery_crash_idempotent () =
  let fired = ref 0 in
  List.iter
    (fun (crash_after, recovery_after) ->
      let o =
        Checker.run_case ~make:wim_make ~ops:3_000 ~universe:300
          ~crash_after ~recovery_crash_after:recovery_after ~seed:5 ()
      in
      Alcotest.(check bool) "crash fired" true o.Checker.crashed;
      if o.Checker.recovery_crashed then incr fired;
      Alcotest.(check (list string)) "idempotent recovery" []
        o.Checker.violations)
    [ (10, 0); (10, 1); (40, 0); (40, 2); (75, 0); (75, 3) ];
  Alcotest.(check bool)
    (Printf.sprintf "recovery crashes actually fired (%d)" !fired)
    true (!fired >= 1)

(* WIM sweep doubles as the regression test for the absorb-floor ordering
   bug (absorb once published its floor before [ensure_abi_room], whose
   compaction could clear it, leaving absorbed ABI entries uncovered by any
   floor — found by this checker). *)
let test_wim_sweep () =
  let v =
    Sweep.run_store ~name:"ChamDB-WIM" ~make:wim_make ~seeds:[ 3 ]
      ~ops:3_000 ~universe:300 ()
  in
  Alcotest.(check bool) "crashes fired" true (v.Sweep.v_fired > 0);
  List.iter
    (fun f -> Alcotest.failf "WIM sweep: %s" (Sweep.repro_hint f.Sweep.f_case))
    v.Sweep.v_failures

(* ------------------------------ Mutation test ----------------------------- *)

let test_mutant_broken_replay_caught () =
  let v =
    Sweep.run_store ~name:"Broken-Replay" ~make:Fault.Mutants.broken_replay
      ~seeds:[ 1; 2 ] ~ops:3_000 ~universe:200 ()
  in
  Alcotest.(check bool) "reversed replay rejected" false (Sweep.passed v)

(* ----------------------------- Seed threading ----------------------------- *)

let test_runner_carries_seed () =
  let store = (Harness.Stores.chameleon tiny).Harness.Stores.make () in
  let i = ref 0 in
  let r =
    Harness.Runner.run_ops ~seed:42 ~store ~threads:2 ~start_at:0.0 ~ops:100
      ~next:(fun () ->
        incr i;
        Kv_common.Types.Put (Workload.Keyspace.key_of_index !i, 8))
      ()
  in
  Alcotest.(check (option int)) "seed recorded" (Some 42)
    r.Harness.Runner.seed

let () =
  Alcotest.run "fault"
    [ ( "torn-writes",
        [ Alcotest.test_case "device torn crash" `Quick test_device_torn_crash;
          Alcotest.test_case "vlog torn batch" `Quick test_vlog_torn_batch ] );
      ( "checker",
        [ Alcotest.test_case "clean run (all stores)" `Quick
            test_checker_clean_run;
          Alcotest.test_case "crash case (all stores)" `Quick
            test_checker_crash_all_stores;
          Alcotest.test_case "crash-during-recovery idempotent" `Quick
            test_recovery_crash_idempotent;
          Alcotest.test_case "WIM sweep (absorb-floor regression)" `Quick
            test_wim_sweep ] );
      ( "mutation",
        [ Alcotest.test_case "broken replay caught" `Quick
            test_mutant_broken_replay_caught ] );
      ( "harness",
        [ Alcotest.test_case "runner carries seed" `Quick
            test_runner_carries_seed ] ) ]
