(* End-to-end write batching: STORE.write_batch equivalence, crash
   semantics of group commit, client auto-batching, and the server
   dispatcher's group commit. *)

module Clock = Pmem_sim.Clock
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module Store_intf = Kv_common.Store_intf
module Keyspace = Workload.Keyspace
module Rng = Workload.Rng
module Stores = Harness.Stores
module Injector = Fault.Injector
module Checker = Fault.Checker
module Proto = Service.Proto
module Server = Service.Server
module Endpoint = Service.Endpoint

let key = Keyspace.key_of_index

let present store clock k =
  (Store_intf.read store clock k).Store_intf.loc <> None

(* ------------------- write_batch == sequential writes ------------------- *)

(* Drive two fresh instances of the same store through the same seeded
   mix — one committing put groups through [write_batch], the other
   writing the identical stream op by op — and require identical visible
   state: same per-key presence and the same ordered scan. *)
let test_equivalence () =
  let universe = 200 in
  List.iter
    (fun spec ->
      let a = spec.Stores.make () and b = spec.Stores.make () in
      let ca = Clock.create () and cb = Clock.create () in
      let rng = Rng.create ~seed:5 in
      for _ = 1 to 60 do
        let n = 1 + Rng.int rng 8 in
        let keys = List.init n (fun _ -> key (Rng.int rng universe)) in
        let items = List.map (fun k -> (k, Store_intf.Sized 8)) keys in
        Store_intf.write_batch a ca items;
        List.iter (fun (k, spec) -> Store_intf.write b cb k spec) items;
        if Rng.int rng 5 = 0 then begin
          let k = key (Rng.int rng universe) in
          Store_intf.delete a ca k;
          Store_intf.delete b cb k
        end
      done;
      Store_intf.flush a ca;
      Store_intf.flush b cb;
      for i = 0 to universe - 1 do
        if present a ca (key i) <> present b cb (key i) then
          Alcotest.failf "%s: key %d presence differs from sequential run"
            spec.Stores.name i
      done;
      let scan s c =
        List.map fst (Store_intf.scan s c ~start:0L ~limit:universe)
      in
      Alcotest.(check (list int64))
        (spec.Stores.name ^ ": scans agree")
        (scan b cb) (scan a ca))
    (Stores.all Stores.quick)

(* --------------------- crash mid-group-commit ---------------------------- *)

(* Hybrid-Viper acks a batch with one fence.  Crash at that fence: every
   key written before the batch stays durable, and the batch itself loses
   a suffix — the surviving subset must be a prefix of the batch order,
   never a middle op alone. *)
let test_group_crash_suffix_only () =
  List.iter
    (fun tear_seed ->
      let store = (Stores.find Stores.quick "Hybrid-Viper").Stores.make () in
      let dev = Store_intf.device store in
      let inj = Injector.attach dev in
      let clock = Clock.create () in
      let prelude = List.init 10 key in
      List.iter
        (fun k -> Store_intf.write store clock k (Store_intf.Sized 8))
        prelude;
      let batch = List.init 8 (fun i -> key (100 + i)) in
      Injector.arm inj ~after:0 ();
      (match
         Store_intf.write_batch store clock
           (List.map (fun k -> (k, Store_intf.Sized 8)) batch)
       with
      | () -> Alcotest.fail "crash did not fire inside the group commit"
      | exception Injector.Crash_injected -> ());
      (match tear_seed with
      | Some seed -> Injector.set_tear inj ~seed ~keep_prob:0.5
      | None -> ());
      Store_intf.crash store;
      Injector.clear_tear inj;
      Store_intf.recover store clock;
      List.iter
        (fun k ->
          if not (present store clock k) then
            Alcotest.failf "acked pre-batch key %Ld lost" k)
        prelude;
      (* surviving batch keys must form a prefix of the batch order *)
      let survived = List.map (present store clock) batch in
      let rec prefix_ok = function
        | true :: tl -> prefix_ok tl
        | rest -> not (List.mem true rest)
      in
      Alcotest.(check bool) "suffix-only loss" true (prefix_ok survived);
      (match tear_seed with
      | None ->
        (* without torn writes nothing past the old watermark survives *)
        Alcotest.(check bool) "whole batch lost" false (List.mem true survived)
      | Some _ -> ());
      Injector.detach inj)
    [ None; Some 3; Some 7; Some 13 ]

(* The checker's oracle now covers batched acks: randomized crash points
   over the grouped-write mix must hold for the stores with a real group
   commit and for a sequential-fallback store alike. *)
let test_checker_grouped_mix () =
  List.iter
    (fun name ->
      let make = (Stores.find Stores.quick name).Stores.make in
      List.iter
        (fun (seed, after) ->
          let o = Checker.run_case ~make ~ops:1_500 ~crash_after:after ~seed () in
          if o.Checker.violations <> [] then
            Alcotest.failf "%s seed %d after %d: %s" name seed after
              (String.concat " | " o.Checker.violations))
        [ (1, 40); (11, 173); (101, 977) ])
    [ "Hybrid-Viper"; "Pmem-Hash" ]

(* ------------------------- client auto-batching -------------------------- *)

let with_server ~max_requests f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ckv-test-batcher-%d.sock" (Unix.getpid ()))
  in
  let store = (Stores.find Stores.quick "Hybrid-Viper").Stores.make () in
  let clock = Clock.create () in
  let backend = Endpoint.backend_of_store ~clock store in
  let server =
    Thread.create (fun () -> Endpoint.serve ~max_requests ~path backend) ()
  in
  let rec wait_sock n =
    if n = 0 then Alcotest.fail "socket never appeared";
    if not (Sys.file_exists path) then begin
      Thread.delay 0.05;
      wait_sock (n - 1)
    end
  in
  wait_sock 100;
  let c = Endpoint.connect path in
  f c;
  Endpoint.close c;
  ignore (Thread.join server)

(* Linger flushes are driven by the injectable clock, so the flush point
   is exact: no flush one tick before the deadline, flush at it. *)
let test_batcher_linger_deterministic () =
  with_server ~max_requests:3 (fun c ->
      let now = ref 0.0 in
      let b =
        Endpoint.batcher ~max_count:8 ~linger:1.0 ~now:(fun () -> !now) c
      in
      Endpoint.submit b (Proto.Put (1L, Bytes.of_string "a"));
      Endpoint.submit b (Proto.Put (2L, Bytes.of_string "b"));
      Alcotest.(check int) "buffered" 2 (Endpoint.pending b);
      Alcotest.(check (option (float 1e-9))) "deadline is submit+linger"
        (Some 1.0) (Endpoint.deadline b);
      now := 0.999;
      Endpoint.tick b;
      Alcotest.(check int) "still buffered before deadline" 2
        (Endpoint.pending b);
      now := 1.0;
      Endpoint.tick b;
      Alcotest.(check int) "linger flushed" 0 (Endpoint.pending b);
      Alcotest.(check int) "one frame in flight" 1 (Endpoint.inflight b);
      (* count threshold flushes from inside submit, no tick needed *)
      let b2 =
        Endpoint.batcher ~max_count:2 ~now:(fun () -> !now) c
      in
      Endpoint.submit b2 (Proto.Put (3L, Bytes.of_string "c"));
      Endpoint.submit b2 (Proto.Put (4L, Bytes.of_string "d"));
      Alcotest.(check int) "count flush" 0 (Endpoint.pending b2);
      let r1 = Endpoint.drain b in
      let r2 = Endpoint.drain b2 in
      Alcotest.(check int) "one reply per submitted op" 2 (List.length r1);
      List.iter
        (fun r -> Alcotest.(check bool) "ok" true (r = Proto.Ok))
        (r1 @ r2);
      Alcotest.(check bool) "batched put visible" true
        (Endpoint.request c (Proto.Get 4L) <> Proto.Miss))

(* ------------------------ server group commit ---------------------------- *)

let put_frame k =
  Proto.encode_request (Proto.Put (k, Bytes.make 8 'v'))

(* A run of single-put frames queued together dispatches as one
   write_batch: the grouped-writes counter sees them, every frame still
   acks Ok, and each op gets its own service sample from its intended
   arrival. *)
let test_server_group_commit () =
  let store = (Stores.find Stores.quick "Hybrid-Viper").Stores.make () in
  let n = 64 in
  let arrivals =
    Array.init n (fun i ->
        { Server.at = float_of_int (i / 8) *. 50.0;
          conn = i mod 8;
          frame = put_frame (key i) })
  in
  let s =
    Server.run ~store ~workers:2 ~linger_ns:5_000.0 ~start_at:0.0 ~arrivals ()
  in
  Alcotest.(check int) "all executed" n s.Server.executed;
  Alcotest.(check int) "per-op service samples" n
    (Metrics.Histogram.count s.Server.put_service);
  let counter name =
    match List.assoc_opt name s.Server.counters with
    | Some v -> v
    | None -> 0.0
  in
  Alcotest.(check bool) "dispatcher grouped writes" true
    (counter "service.grouped_writes" > 0.0);
  Alcotest.(check bool) "store saw group commits" true
    (counter "hybrid_viper.group_commits" > 0.0);
  let clock = Clock.create ~at:s.Server.end_ns () in
  for i = 0 to n - 1 do
    if not (present store clock (key i)) then
      Alcotest.failf "grouped put %d not applied" i
  done

(* Each op inside a Batch frame carries the frame's intended arrival:
   the per-op samples all measure finish - frame_intended, so a B-op
   frame contributes exactly B put samples, none below the frame's own
   service time. *)
let test_batch_frame_per_op_stamps () =
  let store = (Stores.find Stores.quick "Dram-Hash").Stores.make () in
  let b = 16 in
  let reqs = List.init b (fun i -> Proto.Put (key i, Bytes.make 8 'v')) in
  let arrivals =
    [| { Server.at = 0.0; conn = 0;
         frame = Proto.encode_request (Proto.Batch reqs) } |]
  in
  let s = Server.run ~store ~workers:1 ~start_at:0.0 ~arrivals () in
  Alcotest.(check int) "one frame" 1 s.Server.executed;
  Alcotest.(check int) "B ops" b s.Server.ops_executed;
  Alcotest.(check int) "B put samples" b
    (Metrics.Histogram.count s.Server.put_service);
  Alcotest.(check bool) "samples measured from intended arrival" true
    (Metrics.Histogram.min_value s.Server.put_service > 0.0)

let () =
  Alcotest.run "batch"
    [ ( "store",
        [ Alcotest.test_case "write_batch == sequential (all stores)" `Quick
            test_equivalence ] );
      ( "crash",
        [ Alcotest.test_case "group commit loses a suffix only" `Quick
            test_group_crash_suffix_only;
          Alcotest.test_case "checker oracle covers batched acks" `Slow
            test_checker_grouped_mix ] );
      ( "client",
        [ Alcotest.test_case "linger flush is deterministic" `Quick
            test_batcher_linger_deterministic ] );
      ( "server",
        [ Alcotest.test_case "dispatcher group commit" `Quick
            test_server_group_commit;
          Alcotest.test_case "batch frame stamps every op" `Quick
            test_batch_frame_per_op_stamps ] ) ]
