(* Cluster layer: HRW ring placement, quorum replication, node failover
   with catch-up, and live shard migration.

   The scenario tests run the same Cluster_bench entry points the
   harness experiment and `ckv cluster` use, at a tiny scale, and gate
   on the oracle divergence audit — the executable form of "no
   quorum-acked write is ever lost". *)

module Ring = Cluster.Ring
module Node = Cluster.Node
module Router = Cluster.Router
module Membership = Cluster.Membership
module Migration = Cluster.Migration
module Run = Cluster.Run
module Proto = Service.Proto
module Clock = Pmem_sim.Clock

let key i = Workload.Keyspace.key_of_index i

let tiny =
  { Harness.Stores.shards = 4;
    memtable_slots = 64;
    load_keys = 4000;
    sweep_ops = 6000;
    threads = [ 1 ];
    vlen = 8 }

let mk_cluster ?(vshards = 32) ~n ~replicas ~wq ~rq () =
  let nodes =
    Array.init n (fun i ->
        let spec =
          Harness.Stores.chameleon ~name:(Printf.sprintf "n%d" i) tiny
        in
        Cluster.Node.create ~id:i (spec.Harness.Stores.make ()))
  in
  let ring =
    Ring.create ~vshards ~replicas ~nodes:(List.init n Fun.id) ()
  in
  (ring, nodes, Router.create ~write_quorum:wq ~read_quorum:rq ring nodes)

(* --------------------------------- ring ---------------------------------- *)

let test_ring_deterministic_and_balanced () =
  let mk () = Ring.create ~vshards:128 ~replicas:2 ~nodes:[ 0; 1; 2; 3 ] () in
  let a = mk () and b = mk () in
  let counts = Array.make 4 0 in
  for v = 0 to 127 do
    let oa = Ring.owners a v and ob = Ring.owners b v in
    Alcotest.(check (list int)) "same owners on identical rings" oa ob;
    Alcotest.(check int) "replica count" 2 (List.length oa);
    Alcotest.(check bool) "owners distinct" true
      (List.length (List.sort_uniq compare oa) = 2);
    List.iter (fun n -> counts.(n) <- counts.(n) + 1) oa
  done;
  Array.iteri
    (fun n c ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d owns a fair share (%d vshards)" n c)
        true
        (c >= 16))
    counts;
  (* keys map to stable vshards in range *)
  for i = 0 to 999 do
    let v = Ring.vshard_of a (key i) in
    Alcotest.(check bool) "vshard in range" true (v >= 0 && v < 128);
    Alcotest.(check int) "vshard stable" v (Ring.vshard_of b (key i))
  done

let test_ring_minimal_disruption () =
  (* adding a node only reassigns vshards the new node scores into *)
  let four = Ring.create ~vshards:128 ~replicas:2 ~nodes:[ 0; 1; 2; 3 ] () in
  let five =
    Ring.create ~vshards:128 ~replicas:2 ~nodes:[ 0; 1; 2; 3; 4 ] ()
  in
  let moved = ref 0 in
  for v = 0 to 127 do
    let o4 = Ring.owners four v and o5 = Ring.owners five v in
    if o4 <> o5 then begin
      incr moved;
      Alcotest.(check bool) "changed owner sets involve the new node" true
        (List.mem 4 o5)
    end
  done;
  Alcotest.(check bool) "some vshards moved to the new node" true (!moved > 0);
  Alcotest.(check bool) "most vshards did not move" true (!moved < 128)

let test_ring_override () =
  let r = Ring.create ~vshards:16 ~replicas:2 ~nodes:[ 0; 1; 2 ] () in
  let before = Ring.owners r 3 in
  Ring.set_override r ~vshard:3 [ 2; 0 ];
  Alcotest.(check (list int)) "override wins" [ 2; 0 ] (Ring.owners r 3);
  Alcotest.(check bool) "other vshards untouched" true
    (Ring.owners r 4 = Ring.owners (Ring.create ~vshards:16 ~replicas:2 ~nodes:[ 0; 1; 2 ] ()) 4);
  Ring.clear_override r ~vshard:3;
  Alcotest.(check (list int)) "clear restores HRW" before (Ring.owners r 3);
  Alcotest.check_raises "override must carry exactly replicas owners"
    (Invalid_argument "Ring.set_override: wrong owner count") (fun () ->
      Ring.set_override r ~vshard:1 [ 0 ])

(* ------------------------------ quorum I/O -------------------------------- *)

let test_quorum_write_and_read () =
  let ring, nodes, router = mk_cluster ~n:3 ~replicas:2 ~wq:2 ~rq:1 () in
  let k = key 7 in
  let o = Router.submit_write router ~at:0.0 ~bytes:26 k (Node.Put 8) in
  Alcotest.(check bool) "write acked" true (o.Router.reply = Proto.Ok);
  (match o.Router.acked with
  | [ (k', stamp, Node.Put 8) ] ->
      Alcotest.(check bool) "acked the key" true (k' = k);
      Alcotest.(check int) "first stamp" 1 stamp
  | _ -> Alcotest.fail "expected one acked put");
  (* every owner applied it, with the same stamp *)
  List.iter
    (fun nid ->
      Alcotest.(check (option int))
        (Printf.sprintf "owner %d holds version" nid)
        (Some 1)
        (Node.version nodes.(nid) k))
    (Ring.owners_of_key ring k);
  let r = Router.submit_read router ~at:o.Router.finish ~bytes:14 k in
  Alcotest.(check bool) "read hits" true (r.Router.reply = Proto.Hit 8);
  Alcotest.(check bool) "reply after request" true (r.Router.finish > o.Router.finish);
  (* a delete is a stamped version too *)
  let d = Router.submit_write router ~at:r.Router.finish ~bytes:14 k Node.Delete in
  Alcotest.(check bool) "delete acked" true (d.Router.reply = Proto.Ok);
  let r2 = Router.submit_read router ~at:d.Router.finish ~bytes:14 k in
  Alcotest.(check bool) "deleted reads miss" true (r2.Router.reply = Proto.Miss)

let test_scan_fanout_merges_cluster () =
  (* an ordered scan fans out to every Up node and merges the replies:
     ascending keys, one entry per key, acked value lengths *)
  let _ring, _nodes, router = mk_cluster ~n:3 ~replicas:2 ~wq:2 ~rq:1 () in
  let orc = Run.oracle () in
  let t0 = Run.preload router orc ~n_keys:200 ~vlen:8 in
  Alcotest.(check int) "no scans yet" 0 (Router.scans router);
  let o = Router.call router ~at:t0 ~bytes:14 (Proto.Scan (0L, 50)) in
  (match o.Router.reply with
  | Proto.Values vs ->
    Alcotest.(check int) "limit honoured" 50 (List.length vs);
    let rec ascending = function
      | (a, _, _) :: ((b, _, _) :: _ as rest) ->
        Kv_common.Types.key_compare a b < 0 && ascending rest
      | _ -> true
    in
    Alcotest.(check bool) "ascending and deduplicated" true (ascending vs);
    List.iter
      (fun (_, vlen, _) -> Alcotest.(check int) "acked vlen" 8 vlen)
      vs
  | r -> Alcotest.failf "scan earned %a, not Values" Proto.pp_reply r);
  Alcotest.(check int) "scan counted" 1 (Router.scans router);
  Alcotest.(check bool) "reply takes time" true (o.Router.finish > t0);
  Alcotest.(check bool) "nothing acked" true (o.Router.acked = []);
  (* the scan audit reproduces the oracle's whole live set *)
  let checked, mms = Run.scan_divergence router orc in
  Alcotest.(check int) "audited every live key" 200 checked;
  Alcotest.(check int) "scan audit clean" 0 (List.length mms);
  (* a quorum-acked delete disappears from the next scan *)
  let victim =
    match o.Router.reply with
    | Proto.Values ((k, _, _) :: _) -> k
    | _ -> Alcotest.fail "no scanned key"
  in
  let d =
    Router.submit_write router ~at:o.Router.finish ~bytes:14 victim
      Node.Delete
  in
  Alcotest.(check bool) "delete acked" true (d.Router.reply = Proto.Ok);
  let o2 =
    Router.call router ~at:d.Router.finish ~bytes:14 (Proto.Scan (0L, 50))
  in
  match o2.Router.reply with
  | Proto.Values vs ->
    Alcotest.(check bool) "deleted key suppressed" true
      (not (List.exists (fun (k, _, _) -> k = victim) vs))
  | r -> Alcotest.failf "rescan earned %a, not Values" Proto.pp_reply r

let test_scan_refused_when_vshard_uncovered () =
  (* a vshard with no Up owner makes a complete scan impossible: the
     router must refuse rather than answer with a silent gap, and keep
     serving point reads for the surviving vshards *)
  let ring, nodes, router = mk_cluster ~n:3 ~replicas:2 ~wq:2 ~rq:1 () in
  for i = 0 to 49 do
    ignore (Router.submit_write router ~at:0.0 ~bytes:26 (key i) (Node.Put 8))
  done;
  List.iter
    (fun nid -> Node.kill ~tear:false ~seed:(10 + nid) nodes.(nid))
    (Ring.owners ring 0);
  let before = Router.unavailable router in
  let o = Router.call router ~at:1e6 ~bytes:14 (Proto.Scan (0L, 10)) in
  (match o.Router.reply with
  | Proto.Err _ -> ()
  | r -> Alcotest.failf "scan earned %a, not Err" Proto.pp_reply r);
  Alcotest.(check int) "unavailability counted" (before + 1)
    (Router.unavailable router);
  Alcotest.(check int) "scan counted" 1 (Router.scans router);
  Alcotest.(check bool) "nothing acked" true (o.Router.acked = []);
  (* the same client keeps working on a covered vshard *)
  let rec covered i =
    if i >= 50 then Alcotest.fail "no key on a surviving owner"
    else if
      List.exists
        (fun nid -> Node.status nodes.(nid) = Node.Up)
        (Ring.owners_of_key ring (key i))
    then key i
    else covered (i + 1)
  in
  let k = covered 0 in
  let r = Router.submit_read router ~at:o.Router.finish ~bytes:14 k in
  Alcotest.(check bool) "later read still served" true
    (r.Router.reply = Proto.Hit 8)

let test_quorum_failfast_on_owner_down () =
  let ring, nodes, router = mk_cluster ~n:3 ~replicas:2 ~wq:2 ~rq:1 () in
  let k = key 42 in
  ignore (Router.submit_write router ~at:0.0 ~bytes:26 k (Node.Put 8));
  let owners = Ring.owners_of_key ring k in
  let dead = List.hd owners and alive = List.nth owners 1 in
  Node.kill ~tear:false ~seed:1 nodes.(dead);
  (* writes lose their quorum: refused and applied nowhere *)
  let o = Router.submit_write router ~at:1e6 ~bytes:26 k (Node.Put 9) in
  Alcotest.(check bool) "write refused" true (o.Router.reply = Proto.Err "quorum");
  Alcotest.(check int) "nothing acked" 0 (List.length o.Router.acked);
  Alcotest.(check (option int)) "survivor kept the old version" (Some 1)
    (Node.version nodes.(alive) k);
  Alcotest.(check int) "quorum failure counted" 1
    (Router.quorum_failures router);
  (* reads survive on the remaining replica *)
  let r = Router.submit_read router ~at:2e6 ~bytes:14 k in
  Alcotest.(check bool) "read served by survivor" true
    (r.Router.reply = Proto.Hit 8);
  (* both owners down: unavailable *)
  Node.kill ~tear:false ~seed:2 nodes.(alive);
  let r2 = Router.submit_read router ~at:3e6 ~bytes:14 k in
  Alcotest.(check bool) "no owner up" true
    (r2.Router.reply = Proto.Err "unavailable");
  Alcotest.(check int) "unavailability counted" 1 (Router.unavailable router)

let test_apply_is_idempotent () =
  let _, nodes, _ = mk_cluster ~n:2 ~replicas:2 ~wq:2 ~rq:1 () in
  let n = nodes.(0) in
  let c = Clock.create () in
  Alcotest.(check bool) "fresh stamp applies" true
    (Node.apply n c ~stamp:5 (key 1) (Node.Put 8));
  Alcotest.(check bool) "replay of same stamp is a no-op" false
    (Node.apply n c ~stamp:5 (key 1) (Node.Put 8));
  Alcotest.(check bool) "older stamp is a no-op" false
    (Node.apply n c ~stamp:3 (key 1) (Node.Put 16));
  Alcotest.(check bool) "newer stamp applies" true
    (Node.apply n c ~stamp:9 (key 1) Node.Delete);
  Alcotest.(check (option int)) "version tracks newest" (Some 9)
    (Node.version n (key 1))

let test_stale_route_redirects_not_misroutes () =
  let ring, _, router = mk_cluster ~n:3 ~replicas:2 ~wq:2 ~rq:1 () in
  let k = key 11 in
  ignore (Router.submit_write router ~at:0.0 ~bytes:26 k (Node.Put 8));
  let v = Ring.vshard_of ring k in
  (* reorder the owner list behind the router's cache: the cached route
     is now stale, so the next request must bounce once and still be
     answered correctly by a real owner *)
  Ring.set_override ring ~vshard:v (List.rev (Ring.owners ring v));
  let before = Router.redirects router in
  let r = Router.submit_read router ~at:1e6 ~bytes:14 k in
  Alcotest.(check bool) "still answered correctly" true
    (r.Router.reply = Proto.Hit 8);
  Alcotest.(check int) "one redirect" (before + 1) (Router.redirects router);
  Alcotest.(check int) "never served by a non-owner" 0
    (Router.misrouted router)

(* ------------------------- failover end to end ---------------------------- *)

let test_failover_no_acked_write_lost () =
  let sc = Harness.Cluster_bench.failover ~seed:3 tiny in
  let r = sc.Harness.Cluster_bench.sc_result in
  let router = sc.Harness.Cluster_bench.sc_setup.Harness.Cluster_bench.router in
  Alcotest.(check bool) "ran a real load" true (r.Run.r_ops > 1000);
  Alcotest.(check bool) "writes were refused while down (fail-fast)" true
    (Router.quorum_failures router > 0);
  (match r.Run.r_catchups with
  | [ cu ] ->
      Alcotest.(check bool) "catch-up streamed the lost tail" true
        (Membership.shipped cu >= 0);
      Alcotest.(check int) "rejoined node is the victim"
        Harness.Cluster_bench.victim (Membership.node cu)
  | _ -> Alcotest.fail "expected exactly one completed catch-up");
  let victim =
    Router.node router Harness.Cluster_bench.victim
  in
  Alcotest.(check bool) "victim is readable again" true
    (Node.status victim = Node.Up);
  Alcotest.(check int) "no misroutes" 0 (Router.misrouted router);
  Alcotest.(check bool) "audit covered every acked key" true
    (sc.Harness.Cluster_bench.sc_checked >= r.Run.r_acked);
  Alcotest.(check int) "zero divergence: no acked write lost" 0
    (List.length sc.Harness.Cluster_bench.sc_mismatches)

(* ------------------------- migration end to end --------------------------- *)

let test_migration_dual_write_cutover_cleanup () =
  let sc = Harness.Cluster_bench.rebalance ~seed:4 tiny in
  let r = sc.Harness.Cluster_bench.sc_result in
  let s = sc.Harness.Cluster_bench.sc_setup in
  let router = s.Harness.Cluster_bench.router in
  let m =
    match r.Run.r_migrations with
    | [ m ] -> m
    | _ -> Alcotest.fail "expected exactly one migration"
  in
  Alcotest.(check bool) "migration finished and cleaned" true
    (Migration.phase m = Migration.Cleaned);
  Alcotest.(check bool) "copied the snapshot" true
    (Migration.total m > 0 && Migration.copied m <= Migration.total m);
  let ring = Router.ring router in
  let owners = Ring.owners ring (Migration.vshard m) in
  Alcotest.(check bool) "destination owns the vshard" true
    (List.mem (Migration.to_node m) owners);
  Alcotest.(check bool) "source no longer owns it" true
    (not (List.mem (Migration.from_node m) owners));
  Alcotest.(check int) "no misroutes across cutover" 0
    (Router.misrouted router);
  (* force one more request at the migrated vshard: even if the load
     never touched it after cutover, the stale route must bounce exactly
     through NotOwner, never serve from the old owner *)
  let rec find_key i =
    if i >= s.Harness.Cluster_bench.n_keys then
      Alcotest.fail "no key in migrated vshard"
    else if Ring.vshard_of ring (key i) = Migration.vshard m then key i
    else find_key (i + 1)
  in
  let k = find_key 0 in
  let probe = Router.submit_read router ~at:(r.Run.r_end_ns +. 1e6) ~bytes:14 k in
  Alcotest.(check bool) "migrated key still readable" true
    (match probe.Router.reply with
    | Proto.Hit _ | Proto.Value _ | Proto.Miss -> true
    | _ -> false);
  Alcotest.(check bool) "cutover surfaced as redirects" true
    (Router.redirects router >= 1);
  Alcotest.(check int) "zero divergence after migration" 0
    (List.length sc.Harness.Cluster_bench.sc_mismatches);
  (* the source actually reclaimed the moved keys *)
  let src = Router.node router (Migration.from_node m) in
  let leaked = ref 0 in
  Node.iter_versions src (fun k _ ->
      if Ring.vshard_of ring k = Migration.vshard m then incr leaked);
  Alcotest.(check int) "source dropped the moved vshard" 0 !leaked

(* --------------------------- preload + audit ------------------------------ *)

let test_preload_replicates_and_audits_clean () =
  let _, _, router = mk_cluster ~n:3 ~replicas:2 ~wq:2 ~rq:1 () in
  let orc = Run.oracle () in
  let t0 = Run.preload router orc ~n_keys:500 ~vlen:8 in
  Alcotest.(check bool) "preload advances time" true (t0 > 0.0);
  let checked, mms = Run.divergence router orc in
  Alcotest.(check int) "two replica reads per key" 1000 checked;
  Alcotest.(check int) "clean audit" 0 (List.length mms);
  let scanned, smms = Run.scan_divergence router orc in
  Alcotest.(check int) "scan audit covers the live set" 500 scanned;
  Alcotest.(check int) "clean scan audit" 0 (List.length smms)

let () =
  Alcotest.run "cluster"
    [ ( "ring",
        [ Alcotest.test_case "deterministic and balanced" `Quick
            test_ring_deterministic_and_balanced;
          Alcotest.test_case "minimal disruption on add" `Quick
            test_ring_minimal_disruption;
          Alcotest.test_case "override set/clear" `Quick test_ring_override ] );
      ( "quorum",
        [ Alcotest.test_case "replicated write, versioned read" `Quick
            test_quorum_write_and_read;
          Alcotest.test_case "fail-fast without quorum" `Quick
            test_quorum_failfast_on_owner_down;
          Alcotest.test_case "stamped apply is idempotent" `Quick
            test_apply_is_idempotent;
          Alcotest.test_case "stale route redirects, never misroutes" `Quick
            test_stale_route_redirects_not_misroutes;
          Alcotest.test_case "scan fan-out merges the cluster" `Quick
            test_scan_fanout_merges_cluster;
          Alcotest.test_case "scan refused when a vshard is uncovered" `Quick
            test_scan_refused_when_vshard_uncovered ] );
      ( "scenarios",
        [ Alcotest.test_case "failover: no acked write lost" `Quick
            test_failover_no_acked_write_lost;
          Alcotest.test_case "migration: dual-write, cutover, cleanup" `Quick
            test_migration_dual_write_cutover_cleanup;
          Alcotest.test_case "preload replicates and audits clean" `Quick
            test_preload_replicates_and_audits_clean ] ) ]
