(* End-to-end integrity: checksums, media faults, scrub, quarantine.

   These tests drive the PR-5 integrity subsystem: per-artifact CRCs
   (log records, table runs, manifest floors), the seeded media-fault
   sweep, scrub repair/containment, quarantine semantics on the read
   path, read-cache invalidation, and crash-during-scrub recovery. *)

module C = Chameleondb
module Config = C.Config
module Store = C.Store
module Shard = C.Shard
module Manifest = C.Manifest
module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module LT = Kv_common.Linear_table
module SI = Kv_common.Store_intf

let dev () = Device.create Pmem_sim.Cost_model.optane

let key i = Workload.Keyspace.key_of_index i

let put db c k ~vlen = Store.write db c k (SI.Sized vlen)
let get db c k = (Store.read db c k).SI.loc

let small_cfg = { Config.default with Config.shards = 4; memtable_slots = 32 }

let mk ?(cfg = small_cfg) () = Store.create ~cfg ()

let load db clock n =
  for i = 0 to n - 1 do
    put db clock (key i) ~vlen:24
  done;
  Store.flush_all db clock;
  Store.wait_background db clock

(* ----------------------- checksum roundtrips ----------------------------- *)

let test_vlog_checksum_roundtrip () =
  let d = dev () in
  let t = Vlog.create d in
  let c = Clock.create () in
  let locs = List.init 20 (fun i -> Vlog.append t c (key i) ~vlen:24) in
  Vlog.flush t c;
  List.iter
    (fun l -> Alcotest.(check bool) "intact" true (Vlog.intact t c l))
    locs;
  let victim = List.nth locs 7 in
  Vlog.corrupt_entry t victim;
  Alcotest.(check bool) "bit rot detected" false (Vlog.intact t c victim);
  Alcotest.(check bool) "read refuses" true
    (Vlog.read t c victim = Error `Corrupt);
  (* neighbours unaffected *)
  Alcotest.(check bool) "neighbour intact" true
    (Vlog.intact t c (List.nth locs 8))

let test_vlog_poison_detected () =
  let d = dev () in
  let t = Vlog.create d in
  let c = Clock.create () in
  let locs = List.init 20 (fun i -> Vlog.append t c (key i) ~vlen:24) in
  Vlog.flush t c;
  let victim = List.nth locs 3 in
  let off, len = Vlog.entry_range t victim in
  Device.inject_poison d ~off ~len;
  Alcotest.(check bool) "poison detected" false (Vlog.intact t c victim);
  Alcotest.(check bool) "read refuses" true
    (Vlog.read t c victim = Error `Corrupt)

let test_table_checksum_roundtrip () =
  let d = dev () in
  let c = Clock.create () in
  let entries = List.init 50 (fun i -> (key i, i)) in
  let t = LT.build d c ~slots:128 entries in
  Alcotest.(check bool) "intact after build" true (LT.intact t c);
  let off, len = LT.media_range t in
  Device.flip_bit d ~off:(off + (len / 2)) ~bit:3;
  Alcotest.(check bool) "flip detected" false (LT.intact t c)

let test_manifest_checksum_roundtrip () =
  let db = mk () in
  let c = Clock.create () in
  load db c 200;
  Alcotest.(check bool) "floor intact" true
    (Manifest.floor_intact (Store.manifest db) ~shard:0);
  let off, len = Manifest.floor_range (Store.manifest db) ~shard:0 in
  Device.inject_poison (Store.device db) ~off ~len;
  Alcotest.(check bool) "floor poison detected" false
    (Manifest.floor_intact (Store.manifest db) ~shard:0)

(* ----------------------- seeded media-fault sweep ------------------------- *)

let test_media_sweep_chameleon () =
  let v =
    Fault.Media.run_store ~name:"ChameleonDB"
      ~make:(fun () -> Store.store (mk ()))
      ~seeds:[ 1; 11 ] ~ops:1_500 ~universe:200 ~faults:8 ()
  in
  Alcotest.(check (list string)) "no violations" [] v.Fault.Media.m_violations;
  Alcotest.(check bool) "faults injected" true (v.Fault.Media.m_injected > 0)

let test_media_sweep_artifacts () =
  Alcotest.(check (list string)) "artifact legs clean" []
    (Fault.Media.run_chameleon_artifacts ~ops:2_000 ~universe:200 ())

(* ----------------------- scrub: repair and containment -------------------- *)

let test_scrub_repairs_table_then_reads_succeed () =
  let db = mk () in
  let c = Clock.create () in
  load db c 400;
  (* damage one persisted run *)
  let sh =
    match
      Array.find_map
        (fun sh ->
          match Shard.persistent_tables sh with [] -> None | _ -> Some sh)
        (Store.shards db)
    with
    | Some sh -> sh
    | None -> Alcotest.fail "no persisted tables after load"
  in
  let t = List.hd (Shard.persistent_tables sh) in
  let off, len = LT.media_range t in
  Device.inject_poison (Store.device db) ~off ~len:(min len 256);
  let r = Store.scrub db c ~budget_bytes:max_int in
  Alcotest.(check bool) "detected" true (r.SI.sr_detected >= 1);
  Alcotest.(check bool) "repaired" true (r.SI.sr_repaired >= 1);
  Alcotest.(check bool) "healthy after repair" true
    (Store.health db = SI.Healthy);
  (* every key still readable with its correct presence *)
  for i = 0 to 399 do
    let r = Store.read db c (key i) in
    Alcotest.(check bool) "read ok" true (r.SI.loc <> None);
    Alcotest.(check bool) "not corrupt" true (r.SI.stage <> SI.Corrupt)
  done;
  match Store.check_invariants db with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_quarantine_returns_corrupt_not_miss () =
  let db = mk () in
  let c = Clock.create () in
  load db c 100;
  let k = key 42 in
  (match get db c k with
  | Some loc -> Vlog.corrupt_entry (Store.vlog db) loc
  | None -> Alcotest.fail "victim not found");
  ignore (Store.scrub db c ~budget_bytes:max_int);
  let r = Store.read db c k in
  Alcotest.(check bool) "no loc served" true (r.SI.loc = None);
  Alcotest.(check bool) "explicit Corrupt, not a miss" true
    (r.SI.stage = SI.Corrupt);
  (* unaffected keys unchanged *)
  Alcotest.(check bool) "other key fine" true
    ((Store.read db c (key 7)).SI.loc <> None);
  (* a fresh write supersedes the quarantine *)
  put db c k ~vlen:24;
  let r = Store.read db c k in
  Alcotest.(check bool) "rewrite readable" true (r.SI.loc <> None);
  Alcotest.(check bool) "rewrite not corrupt" true (r.SI.stage <> SI.Corrupt)

let test_cache_invalidated_on_quarantine () =
  let cfg = { small_cfg with Config.cache_bytes = 64 * 1024 } in
  let db = mk ~cfg () in
  let c = Clock.create () in
  load db c 100;
  let k = key 13 in
  (* populate the read cache for the victim *)
  ignore (Store.read db c k);
  ignore (Store.read db c k);
  (match get db c k with
  | Some loc -> Vlog.corrupt_entry (Store.vlog db) loc
  | None -> Alcotest.fail "victim not found");
  Store.quarantine db c k;
  let r = Store.read db c k in
  Alcotest.(check bool) "cached loc not served" true (r.SI.loc = None);
  Alcotest.(check bool) "Corrupt after quarantine" true
    (r.SI.stage = SI.Corrupt)

let test_crash_during_scrub_recovers () =
  let db = mk () in
  let c = Clock.create () in
  load db c 300;
  let k = key 99 in
  (match get db c k with
  | Some loc -> Vlog.corrupt_entry (Store.vlog db) loc
  | None -> Alcotest.fail "victim not found");
  (* a partial pass, then power failure before the scrub completes *)
  ignore (Store.scrub db c ~budget_bytes:1024);
  Store.crash db;
  ignore (Store.recover db c);
  Store.wait_background db c;
  (* replay must not have resurrected the corrupt record as live data *)
  let r = Store.read db c k in
  Alcotest.(check bool) "no corrupt loc after recovery" true
    (r.SI.loc = None);
  (* finish scrubbing: the fault is detected and contained *)
  let detected = ref 0 in
  for _ = 1 to 64 do
    detected := !detected + (Store.scrub db c ~budget_bytes:max_int).SI.sr_detected
  done;
  Alcotest.(check bool) "fault detected post-recovery" true (!detected >= 1);
  let r = Store.read db c k in
  Alcotest.(check bool) "contained as Corrupt" true
    (r.SI.loc = None && r.SI.stage = SI.Corrupt);
  match Store.check_invariants db with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* ------------------------------- runner ----------------------------------- *)

(* ----------------------- scrub: budget deficit carry ---------------------- *)

let test_scrub_budget_deficit_carry () =
  (* The budget is a target, not a hard cap: a pass stops after the
     artifact that crosses it, so one pass can overshoot.  The overshoot
     must be carried: the next pass's target shrinks by the excess, so
     long-run scrub bandwidth converges to [budget] per pass instead of
     [budget + one artifact] per pass. *)
  let db = mk () in
  let c = Clock.create () in
  load db c 3_000;
  let budget = 48 * 1024 in
  let n = 12 in
  let per_pass = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = Store.scrub db c ~budget_bytes:budget in
    per_pass.(i) <- r.SI.sr_scanned_bytes;
    Alcotest.(check bool)
      (Printf.sprintf "pass %d makes progress" i)
      true
      (r.SI.sr_scanned_bytes > 0);
    Alcotest.(check int)
      (Printf.sprintf "pass %d is clean" i)
      0 r.SI.sr_detected
  done;
  let total = Array.fold_left ( + ) 0 per_pass in
  let max_pass = Array.fold_left max 0 per_pass in
  (* the carry telescopes: n passes may exceed n*budget only by the last
     pass's (bounded, single-artifact) overshoot *)
  Alcotest.(check bool)
    (Printf.sprintf "long-run bandwidth converges (%d over %d passes <= %d)"
       total n ((n * budget) + max_pass))
    true
    (total <= (n * budget) + max_pass);
  (* the signature of the carry: some pass overshoots the nominal budget,
     and a later pass runs against a shrunken target to pay it back *)
  let overshot = Array.exists (fun s -> s > budget) per_pass in
  let compensated = Array.exists (fun s -> s < budget) per_pass in
  Alcotest.(check bool) "a pass overshot its budget" true overshot;
  Alcotest.(check bool) "a later pass paid the overshoot back" true
    compensated

let () =
  Alcotest.run "integrity"
    [ ( "checksums",
        [ Alcotest.test_case "vlog roundtrip" `Quick test_vlog_checksum_roundtrip;
          Alcotest.test_case "vlog poison" `Quick test_vlog_poison_detected;
          Alcotest.test_case "table roundtrip" `Quick
            test_table_checksum_roundtrip;
          Alcotest.test_case "manifest roundtrip" `Quick
            test_manifest_checksum_roundtrip ] );
      ( "media sweep",
        [ Alcotest.test_case "seeded sweep" `Quick test_media_sweep_chameleon;
          Alcotest.test_case "artifact legs" `Quick test_media_sweep_artifacts ]
      );
      ( "scrub",
        [ Alcotest.test_case "repairs then reads succeed" `Quick
            test_scrub_repairs_table_then_reads_succeed;
          Alcotest.test_case "quarantine is Corrupt not Miss" `Quick
            test_quarantine_returns_corrupt_not_miss;
          Alcotest.test_case "cache invalidated on quarantine" `Quick
            test_cache_invalidated_on_quarantine;
          Alcotest.test_case "crash during scrub" `Quick
            test_crash_during_scrub_recovers;
          Alcotest.test_case "budget deficit carries between passes" `Quick
            test_scrub_budget_deficit_carry ] ) ]
