module Rng = Workload.Rng
module Zipf = Workload.Zipf
module Keyspace = Workload.Keyspace
module Ycsb = Workload.Ycsb
module Types = Kv_common.Types

(* ----------------------------------- Rng --------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_matters () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false
    (Int64.equal (Rng.next_int64 a) (Rng.next_int64 b))

let test_rng_copy_independent () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues stream" (Rng.next_int64 a)
    (Rng.next_int64 b)

let prop_rng_int_range =
  QCheck.Test.make ~name:"int in range" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, n) ->
      let rng = Rng.create ~seed in
      let v = Rng.int rng n in
      v >= 0 && v < n)

let prop_rng_float_range =
  QCheck.Test.make ~name:"float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let v = Rng.float rng in
      v >= 0.0 && v < 1.0)

let test_rng_int_zero_rejected () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "invalid" (Invalid_argument "Rng.int") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_uniformity () =
  let rng = Rng.create ~seed:9 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "within 10% of uniform" true
        (c > n / 10 * 9 / 10 && c < n / 10 * 11 / 10))
    buckets

(* ----------------------------------- Zipf -------------------------------- *)

let test_zipf_rank0_most_popular () =
  let z = Zipf.create ~n:1000 () in
  let rng = Rng.create ~seed:5 in
  let counts = Hashtbl.create 64 in
  for _ = 1 to 50_000 do
    let r = Zipf.next z rng in
    Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
  done;
  let c0 = Option.value ~default:0 (Hashtbl.find_opt counts 0) in
  let c10 = Option.value ~default:0 (Hashtbl.find_opt counts 10) in
  Alcotest.(check bool) "rank 0 dominates rank 10" true (c0 > c10);
  (* zipf(0.99): rank 0 should carry several percent of the mass *)
  Alcotest.(check bool) "rank 0 heavy" true (c0 > 50_000 / 50)

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf sample in range" ~count:300
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, n) ->
      let z = Zipf.create ~n () in
      let rng = Rng.create ~seed in
      let r = Zipf.next z rng in
      r >= 0 && r < n)

let test_zipf_grow () =
  let z = Zipf.create ~n:10 () in
  Zipf.grow z 1000;
  Alcotest.(check int) "grown" 1000 (Zipf.n z);
  Zipf.grow z 5;
  Alcotest.(check int) "never shrinks" 1000 (Zipf.n z);
  let rng = Rng.create ~seed:1 in
  let saw_large = ref false in
  for _ = 1 to 20_000 do
    if Zipf.next z rng >= 10 then saw_large := true
  done;
  Alcotest.(check bool) "new ranks reachable after grow" true !saw_large

let test_zipf_invalid () =
  Alcotest.check_raises "n >= 1" (Invalid_argument "Zipf.create") (fun () ->
      ignore (Zipf.create ~n:0 ()))

let prop_zipf_scrambled_range =
  QCheck.Test.make ~name:"scrambled zipf in universe" ~count:300
    QCheck.(pair small_int (int_range 1 100_000))
    (fun (seed, universe) ->
      let z = Zipf.create ~n:(max 1 (universe / 2)) () in
      let rng = Rng.create ~seed in
      let v = Zipf.scrambled z rng ~universe in
      v >= 0 && v < universe)

(* --------------------------------- Keyspace ------------------------------ *)

let test_keyspace_nonzero_distinct () =
  let seen = Hashtbl.create 1024 in
  for i = 0 to 10_000 do
    let k = Keyspace.key_of_index i in
    Alcotest.(check bool) "nonzero" false (Int64.equal k Types.empty_key);
    Alcotest.(check bool) "distinct" false (Hashtbl.mem seen k);
    Hashtbl.replace seen k ()
  done

let test_unique_stream_bounds () =
  let f = Keyspace.unique_stream ~n:10 in
  Alcotest.(check bool) "in range works" true
    (Int64.equal (f 3) (Keyspace.key_of_index 3));
  Alcotest.check_raises "oob" (Invalid_argument "Keyspace.unique_stream")
    (fun () -> ignore (f 10))

(* ----------------------------------- YCSB -------------------------------- *)

let count_ops gen n =
  let puts = ref 0 and gets = ref 0 and rmws = ref 0 and dels = ref 0 in
  let scans = ref 0 in
  for _ = 1 to n do
    match Ycsb.next gen with
    | Types.Put _ -> incr puts
    | Types.Get _ -> incr gets
    | Types.Read_modify_write _ -> incr rmws
    | Types.Delete _ -> incr dels
    | Types.Scan _ -> incr scans
  done;
  (!puts, !gets, !rmws, !dels)

let near ~pct ~of_total n = abs (n - (of_total * pct / 100)) < of_total * 5 / 100

let test_ycsb_load_all_puts () =
  let g = Ycsb.create ~mix:Ycsb.Load ~loaded:100 () in
  let puts, gets, rmws, dels = count_ops g 1_000 in
  Alcotest.(check int) "all puts" 1_000 puts;
  Alcotest.(check int) "no gets" 0 (gets + rmws + dels);
  Alcotest.(check int) "universe grows" 1_100 (Ycsb.inserted g)

let test_ycsb_load_unique_keys () =
  let g = Ycsb.create ~mix:Ycsb.Load ~loaded:1 () in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 500 do
    match Ycsb.next g with
    | Types.Put (k, _) ->
      Alcotest.(check bool) "fresh key" false (Hashtbl.mem seen k);
      Hashtbl.replace seen k ()
    | _ -> Alcotest.fail "expected put"
  done

let test_ycsb_a_mix () =
  let g = Ycsb.create ~mix:Ycsb.A ~loaded:1_000 () in
  let puts, gets, _, _ = count_ops g 10_000 in
  Alcotest.(check bool) "~50% gets" true (near ~pct:50 ~of_total:10_000 gets);
  Alcotest.(check bool) "~50% updates" true (near ~pct:50 ~of_total:10_000 puts)

let test_ycsb_b_mix () =
  let g = Ycsb.create ~mix:Ycsb.B ~loaded:1_000 () in
  let puts, gets, _, _ = count_ops g 10_000 in
  Alcotest.(check bool) "~95% gets" true (near ~pct:95 ~of_total:10_000 gets);
  Alcotest.(check bool) "~5% updates" true (near ~pct:5 ~of_total:10_000 puts)

let test_ycsb_c_all_gets () =
  let g = Ycsb.create ~mix:Ycsb.C ~loaded:1_000 () in
  let puts, gets, rmws, _ = count_ops g 2_000 in
  Alcotest.(check int) "all gets" 2_000 gets;
  Alcotest.(check int) "no writes" 0 (puts + rmws)

let test_ycsb_f_mix () =
  let g = Ycsb.create ~mix:Ycsb.F ~loaded:1_000 () in
  let _, gets, rmws, _ = count_ops g 10_000 in
  Alcotest.(check bool) "~50% gets" true (near ~pct:50 ~of_total:10_000 gets);
  Alcotest.(check bool) "~50% rmw" true (near ~pct:50 ~of_total:10_000 rmws)

let test_ycsb_e_mix () =
  let loaded = 1_000 in
  let g = Ycsb.create ~mix:Ycsb.E ~loaded () in
  let scans = ref 0 and puts = ref 0 and len_sum = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    match Ycsb.next g with
    | Types.Scan (start, len) ->
      incr scans;
      len_sum := !len_sum + len;
      Alcotest.(check bool) "length in 1..100" true (len >= 1 && len <= 100);
      (* start keys come from the loaded universe *)
      let found = ref false in
      for i = 0 to loaded + Ycsb.inserted g - 1 do
        if Int64.equal (Keyspace.key_of_index i) start then found := true
      done;
      Alcotest.(check bool) "start key in universe" true !found
    | Types.Put _ -> incr puts
    | _ -> Alcotest.fail "unexpected op in E"
  done;
  Alcotest.(check bool) "~95% scans" true (near ~pct:95 ~of_total:n !scans);
  Alcotest.(check bool) "~5% inserts" true (near ~pct:5 ~of_total:n !puts);
  (* uniform 1..100 lengths: mean near 50.5 *)
  let mean = float_of_int !len_sum /. float_of_int !scans in
  Alcotest.(check bool)
    (Printf.sprintf "mean scan length ~50 (%.1f)" mean)
    true
    (mean > 45.0 && mean < 56.0)

let test_ycsb_d_recency () =
  let loaded = 100_000 in
  let g = Ycsb.create ~mix:Ycsb.D ~loaded () in
  let recent = ref 0 and total_gets = ref 0 in
  for _ = 1 to 5_000 do
    match Ycsb.next g with
    | Types.Get k ->
      incr total_gets;
      (* reverse-map by scanning the recent window *)
      let ninserted = Ycsb.inserted g in
      let window = max 256 (ninserted / 1000) in
      let is_recent = ref false in
      for i = ninserted - (2 * window) to ninserted - 1 do
        if i >= 0 && Int64.equal (Keyspace.key_of_index i) k then
          is_recent := true
      done;
      if !is_recent then incr recent
    | Types.Put _ -> ()
    | _ -> Alcotest.fail "unexpected op in D"
  done;
  Alcotest.(check bool)
    (Printf.sprintf "gets target recent keys (%d/%d)" !recent !total_gets)
    true
    (!recent > !total_gets * 9 / 10)

let test_ycsb_existing_keys_valid () =
  let loaded = 500 in
  let g = Ycsb.create ~mix:Ycsb.C ~loaded () in
  for _ = 1 to 1_000 do
    match Ycsb.next g with
    | Types.Get k ->
      (* every requested key belongs to the loaded universe *)
      let found = ref false in
      for i = 0 to loaded - 1 do
        if Int64.equal (Keyspace.key_of_index i) k then found := true
      done;
      Alcotest.(check bool) "key in universe" true !found
    | _ -> Alcotest.fail "expected get"
  done

let test_ycsb_names () =
  Alcotest.(check int) "seven workloads" 7 (List.length Ycsb.all);
  Alcotest.(check string) "load name" "YCSB_LOAD" (Ycsb.name Ycsb.Load);
  List.iter
    (fun m ->
      Alcotest.(check bool) "has description" true
        (String.length (Ycsb.description m) > 0))
    Ycsb.all


(* ---------------------------------- Trace -------------------------------- *)

let test_trace_record_replay () =
  let g = Ycsb.create ~seed:4 ~mix:Ycsb.A ~loaded:100 () in
  let t = Workload.Trace.record ~n:500 ~gen:(fun () -> Ycsb.next g) in
  Alcotest.(check int) "length" 500 (Workload.Trace.length t);
  let next = Workload.Trace.replayer t in
  let count = ref 0 in
  let rec drain () =
    match next () with
    | Some op ->
      Alcotest.(check bool) "same op" true (op = Workload.Trace.get t !count);
      incr count;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "replayed all" 500 !count;
  Alcotest.(check bool) "exhausted stays exhausted" true (next () = None)

let test_trace_save_load_roundtrip () =
  let ops =
    [ Types.Put (1L, 8); Types.Get 2L; Types.Delete 3L;
      Types.Read_modify_write (4L, 100); Types.Put (Int64.minus_one, 0) ]
  in
  let t = Workload.Trace.of_ops ops in
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Workload.Trace.save t path;
      let back = Workload.Trace.load path in
      Alcotest.(check int) "length" (List.length ops)
        (Workload.Trace.length back);
      List.iteri
        (fun i op ->
          Alcotest.(check bool)
            (Printf.sprintf "op %d survives" i)
            true
            (op = Workload.Trace.get back i))
        ops)

let test_trace_load_rejects_garbage () =
  let path = Filename.temp_file "trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "P 1 8\nnot a trace line\n";
      close_out oc;
      Alcotest.(check bool) "malformed rejected" true
        (try
           ignore (Workload.Trace.load path);
           false
         with Failure _ -> true))

let test_trace_get_bounds () =
  let t = Workload.Trace.of_ops [ Types.Get 1L ] in
  Alcotest.check_raises "oob" (Invalid_argument "Trace.get") (fun () ->
      ignore (Workload.Trace.get t 1))

let test_trace_drives_store () =
  (* a recorded trace replays bit-identically into two store instances *)
  let g = Ycsb.create ~seed:9 ~mix:Ycsb.F ~loaded:200 () in
  let t = Workload.Trace.record ~n:2_000 ~gen:(fun () -> Ycsb.next g) in
  let run () =
    let cfg =
      { Chameleondb.Config.default with
        Chameleondb.Config.shards = 4;
        memtable_slots = 32 }
    in
    let db = Chameleondb.Store.create ~cfg () in
    let store = Chameleondb.Store.store db in
    let clock = Pmem_sim.Clock.create () in
    Workload.Trace.iter t (fun op ->
        Kv_common.Store_intf.apply store clock op);
    Pmem_sim.Clock.now clock
  in
  Alcotest.(check (float 0.0)) "deterministic simulated time" (run ()) (run ())

let () =
  Alcotest.run "workload"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed matters" `Quick test_rng_seed_matters;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "int 0 rejected" `Quick test_rng_int_zero_rejected;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          QCheck_alcotest.to_alcotest prop_rng_int_range;
          QCheck_alcotest.to_alcotest prop_rng_float_range ] );
      ( "zipf",
        [ Alcotest.test_case "rank 0 most popular" `Quick
            test_zipf_rank0_most_popular;
          Alcotest.test_case "grow" `Quick test_zipf_grow;
          Alcotest.test_case "invalid n" `Quick test_zipf_invalid;
          QCheck_alcotest.to_alcotest prop_zipf_in_range;
          QCheck_alcotest.to_alcotest prop_zipf_scrambled_range ] );
      ( "trace",
        [ Alcotest.test_case "record and replay" `Quick
            test_trace_record_replay;
          Alcotest.test_case "save/load roundtrip" `Quick
            test_trace_save_load_roundtrip;
          Alcotest.test_case "malformed input rejected" `Quick
            test_trace_load_rejects_garbage;
          Alcotest.test_case "get bounds" `Quick test_trace_get_bounds;
          Alcotest.test_case "drives a store deterministically" `Quick
            test_trace_drives_store ] );
      ( "keyspace",
        [ Alcotest.test_case "nonzero and distinct" `Quick
            test_keyspace_nonzero_distinct;
          Alcotest.test_case "unique_stream bounds" `Quick
            test_unique_stream_bounds ] );
      ( "ycsb",
        [ Alcotest.test_case "LOAD all puts" `Quick test_ycsb_load_all_puts;
          Alcotest.test_case "LOAD unique keys" `Quick
            test_ycsb_load_unique_keys;
          Alcotest.test_case "A mix" `Quick test_ycsb_a_mix;
          Alcotest.test_case "B mix" `Quick test_ycsb_b_mix;
          Alcotest.test_case "C all gets" `Quick test_ycsb_c_all_gets;
          Alcotest.test_case "F mix" `Quick test_ycsb_f_mix;
          Alcotest.test_case "E mix: scans and inserts" `Quick
            test_ycsb_e_mix;
          Alcotest.test_case "D targets recent keys" `Quick
            test_ycsb_d_recency;
          Alcotest.test_case "keys from universe" `Quick
            test_ycsb_existing_keys_valid;
          Alcotest.test_case "names/descriptions" `Quick test_ycsb_names ] ) ]
