module H = Metrics.Histogram
module S = Metrics.Summary
module T = Metrics.Table_fmt

let close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

(* ------------------------------- Histogram ------------------------------ *)

let test_empty () =
  let h = H.create () in
  Alcotest.(check int) "count" 0 (H.count h);
  Alcotest.(check (float 0.0)) "p50" 0.0 (H.percentile h 50.0);
  Alcotest.(check (float 0.0)) "max" 0.0 (H.max_value h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (H.mean h);
  Alcotest.(check bool) "cdf empty" true (H.cdf h () = [])

let test_single_value () =
  let h = H.create () in
  H.record h 1000.0;
  Alcotest.(check int) "count" 1 (H.count h);
  Alcotest.(check (float 0.0)) "min" 1000.0 (H.min_value h);
  Alcotest.(check (float 0.0)) "max" 1000.0 (H.max_value h);
  Alcotest.(check (float 0.0)) "mean" 1000.0 (H.mean h);
  Alcotest.(check (float 0.0)) "p99 = the value" 1000.0 (H.percentile h 99.0)

let test_percentile_ordering () =
  let h = H.create () in
  for i = 1 to 10_000 do
    H.record h (float_of_int i)
  done;
  let p50 = H.percentile h 50.0 in
  let p90 = H.percentile h 90.0 in
  let p99 = H.percentile h 99.0 in
  Alcotest.(check bool) "p50 <= p90" true (p50 <= p90);
  Alcotest.(check bool) "p90 <= p99" true (p90 <= p99);
  Alcotest.(check bool) "p99 <= max" true (p99 <= H.max_value h);
  (* within one bucket (~7%) of the true quantile *)
  Alcotest.(check bool) "p50 near 5000" true
    (p50 >= 5000.0 *. 0.93 && p50 <= 5000.0 *. 1.07)

let test_percentile_clamping () =
  let h = H.create () in
  (* empty: any percentile argument, in range or not, yields 0 *)
  Alcotest.(check (float 0.0)) "empty p-50" 0.0 (H.percentile h (-50.0));
  Alcotest.(check (float 0.0)) "empty p150" 0.0 (H.percentile h 150.0);
  (* single sample: every percentile collapses to that sample *)
  H.record h 1000.0;
  Alcotest.(check (float 0.0)) "single p100" 1000.0 (H.percentile h 100.0);
  Alcotest.(check (float 0.0)) "single p150 = p100" (H.percentile h 100.0)
    (H.percentile h 150.0);
  Alcotest.(check (float 0.0)) "single p-10 = p0" (H.percentile h 0.0)
    (H.percentile h (-10.0));
  (* spread data: out-of-range arguments clamp to the [p0, p100] endpoints *)
  let h2 = H.create () in
  for i = 1 to 1_000 do
    H.record h2 (float_of_int i)
  done;
  Alcotest.(check (float 0.0)) "p150 = p100" (H.percentile h2 100.0)
    (H.percentile h2 150.0);
  Alcotest.(check (float 0.0)) "p-1 = p0" (H.percentile h2 0.0)
    (H.percentile h2 (-1.0));
  Alcotest.(check bool) "p0 <= p100" true
    (H.percentile h2 0.0 <= H.percentile h2 100.0);
  Alcotest.(check bool) "p100 <= max" true
    (H.percentile h2 100.0 <= H.max_value h2)

let test_negative_clamped () =
  let h = H.create () in
  H.record h (-5.0);
  Alcotest.(check (float 0.0)) "clamped to 0" 0.0 (H.min_value h)

let test_record_n () =
  let h = H.create () in
  H.record_n h 100.0 50;
  Alcotest.(check int) "count 50" 50 (H.count h);
  Alcotest.(check bool) "record_n 0 is a no-op" true
    (H.record_n h 5.0 0;
     H.count h = 50)

let test_merge () =
  let a = H.create () and b = H.create () in
  H.record a 10.0;
  H.record b 1000.0;
  let m = H.merge a b in
  Alcotest.(check int) "count" 2 (H.count m);
  Alcotest.(check (float 0.0)) "min" 10.0 (H.min_value m);
  Alcotest.(check (float 0.0)) "max" 1000.0 (H.max_value m);
  (* originals untouched *)
  Alcotest.(check int) "a unchanged" 1 (H.count a)

let test_clear () =
  let h = H.create () in
  H.record h 42.0;
  H.clear h;
  Alcotest.(check int) "count" 0 (H.count h);
  H.record h 7.0;
  Alcotest.(check (float 0.0)) "reusable" 7.0 (H.max_value h)

let test_cdf_monotone () =
  let h = H.create () in
  let rng = Workload.Rng.create ~seed:1 in
  for _ = 1 to 5_000 do
    H.record h (float_of_int (Workload.Rng.int rng 1_000_000))
  done;
  let cdf = H.cdf h () in
  Alcotest.(check bool) "non-empty" true (cdf <> []);
  let rec check_sorted = function
    | (v1, f1) :: ((v2, f2) :: _ as rest) ->
      Alcotest.(check bool) "values ascend" true (v1 <= v2);
      Alcotest.(check bool) "fractions ascend" true (f1 <= f2);
      check_sorted rest
    | [ (_, last) ] ->
      Alcotest.(check bool) "ends at 1.0" true (close last 1.0)
    | [] -> ()
  in
  check_sorted cdf

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within [min, max]" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 200) (float_bound_exclusive 1e9))
              (float_bound_inclusive 100.0))
    (fun (values, p) ->
      let h = H.create () in
      List.iter (fun v -> H.record h v) values;
      let q = H.percentile h p in
      q >= 0.0 && q <= H.max_value h +. 1e-6)

let prop_mean_exact =
  QCheck.Test.make ~name:"mean is exact" ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_exclusive 1e6))
    (fun values ->
      let h = H.create () in
      List.iter (fun v -> H.record h v) values;
      let expected =
        List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)
      in
      Float.abs (H.mean h -. expected) < 1e-3)

(* -------------------------------- Summary ------------------------------- *)

let test_summary_throughput () =
  let s = S.make ~name:"x" ~ops:1_000_000 ~sim_ns:1e9 () in
  Alcotest.(check (float 1e-6)) "1 Mops" 1.0 (S.throughput_mops s);
  let zero = S.make ~name:"x" ~ops:5 ~sim_ns:0.0 () in
  Alcotest.(check (float 0.0)) "zero duration" 0.0 (S.throughput_mops zero)

let test_summary_wa () =
  let s =
    S.make ~name:"x" ~ops:1 ~sim_ns:1.0 ~pmem_write_bytes:300.0
      ~user_bytes:100.0 ()
  in
  Alcotest.(check (float 1e-9)) "WA 3" 3.0 (S.write_amplification s);
  let s0 = S.make ~name:"x" ~ops:1 ~sim_ns:1.0 () in
  Alcotest.(check (float 0.0)) "WA no user bytes" 0.0
    (S.write_amplification s0)

let test_summary_bandwidth () =
  let s =
    S.make ~name:"x" ~ops:1 ~sim_ns:1e9 ~pmem_write_bytes:4e9
      ~pmem_read_bytes:12e9 ()
  in
  Alcotest.(check (float 1e-6)) "write GB/s" 4.0 (S.pmem_write_gbps s);
  Alcotest.(check (float 1e-6)) "read GB/s" 12.0 (S.pmem_read_gbps s)

(* ------------------------------- Table_fmt ------------------------------ *)

let test_table_render () =
  let t =
    T.create ~title:"demo" ~columns:[ ("a", T.Left); ("bb", T.Right) ]
  in
  T.add_row t [ "x"; "1" ];
  T.add_rule t;
  T.add_row t [ "longer"; "22" ];
  let s = T.render t in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  (* all lines of the body have equal width *)
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' s)
  in
  (match lines with
  | _title :: header :: rest ->
    List.iter
      (fun l ->
        Alcotest.(check int) "aligned width" (String.length header)
          (String.length l))
      rest
  | _ -> Alcotest.fail "expected header")

let test_table_short_row_padded () =
  let t = T.create ~title:"t" ~columns:[ ("a", T.Left); ("b", T.Left) ] in
  T.add_row t [ "only" ];
  Alcotest.(check bool) "renders" true (String.length (T.render t) > 0)

let test_table_long_row_rejected () =
  let t = T.create ~title:"t" ~columns:[ ("a", T.Left) ] in
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table_fmt.add_row: 2 cells for 1 columns") (fun () ->
      T.add_row t [ "x"; "y" ])

let test_cells () =
  Alcotest.(check string) "zero" "0" (T.cell_f 0.0);
  Alcotest.(check string) "ns" "500ns" (T.cell_ns 500.0);
  Alcotest.(check string) "us" "1.5us" (T.cell_ns 1500.0);
  Alcotest.(check string) "ms" "2.0ms" (T.cell_ns 2e6);
  Alcotest.(check string) "s" "3.00s" (T.cell_ns 3e9);
  Alcotest.(check string) "bytes" "512B" (T.cell_bytes 512.0);
  Alcotest.(check string) "kb" "2.0KB" (T.cell_bytes 2048.0);
  Alcotest.(check string) "gb" "1.00GB" (T.cell_bytes (1024.0 ** 3.0))

let () =
  Alcotest.run "metrics"
    [ ( "histogram",
        [ Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single value" `Quick test_single_value;
          Alcotest.test_case "percentile ordering" `Quick
            test_percentile_ordering;
          Alcotest.test_case "percentile arg clamping" `Quick
            test_percentile_clamping;
          Alcotest.test_case "negative clamped" `Quick test_negative_clamped;
          Alcotest.test_case "record_n" `Quick test_record_n;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "clear" `Quick test_clear;
          Alcotest.test_case "cdf monotone" `Quick test_cdf_monotone;
          QCheck_alcotest.to_alcotest prop_percentile_bounds;
          QCheck_alcotest.to_alcotest prop_mean_exact ] );
      ( "summary",
        [ Alcotest.test_case "throughput" `Quick test_summary_throughput;
          Alcotest.test_case "write amplification" `Quick test_summary_wa;
          Alcotest.test_case "bandwidth" `Quick test_summary_bandwidth ] );
      ( "table_fmt",
        [ Alcotest.test_case "render aligned" `Quick test_table_render;
          Alcotest.test_case "short row padded" `Quick
            test_table_short_row_padded;
          Alcotest.test_case "long row rejected" `Quick
            test_table_long_row_rejected;
          Alcotest.test_case "cell formatting" `Quick test_cells ] ) ]
