module Clock = Pmem_sim.Clock
module Types = Kv_common.Types
module Store_intf = Kv_common.Store_intf
module Runner = Harness.Runner
module Timeline = Harness.Timeline
module Stores = Harness.Stores
module Experiments = Harness.Experiments

let tiny_scale =
  { Stores.quick with
    Stores.shards = 4;
    memtable_slots = 64;
    load_keys = 8_000;
    sweep_ops = 2_000;
    threads = [ 1; 2 ] }

let key i = Workload.Keyspace.key_of_index i

(* --------------------------------- Runner -------------------------------- *)

let test_runner_counts_ops () =
  let store = (Stores.chameleon tiny_scale).Stores.make () in
  let i = ref 0 in
  let r =
    Runner.run_ops ~store ~threads:4 ~start_at:0.0 ~ops:1_000
      ~next:(fun () ->
        incr i;
        Types.Put (key !i, 8))
      ()
  in
  Alcotest.(check int) "ops" 1_000 r.Runner.ops;
  Alcotest.(check int) "latencies recorded" 1_000
    (Metrics.Histogram.count r.Runner.latency);
  Alcotest.(check int) "all puts" 1_000
    (Metrics.Histogram.count r.Runner.put_latency);
  Alcotest.(check bool) "time advanced" true (Runner.sim_ns r > 0.0);
  Alcotest.(check bool) "throughput positive" true
    (Runner.throughput_mops r > 0.0)

let test_runner_start_at () =
  let store = (Stores.chameleon tiny_scale).Stores.make () in
  let r =
    Runner.run_ops ~store ~threads:1 ~start_at:5e6 ~ops:10
      ~next:(fun () -> Types.Get 1L)
      ()
  in
  Alcotest.(check (float 0.0)) "start preserved" 5e6 r.Runner.start_ns;
  Alcotest.(check bool) "end after start" true (r.Runner.end_ns > 5e6)

let test_runner_generator_driven () =
  let store = (Stores.chameleon tiny_scale).Stores.make () in
  (* each thread issues a fixed budget, then retires *)
  let budget = Array.make 3 100 in
  let gen ~thread ~now:_ =
    if budget.(thread) = 0 then None
    else begin
      budget.(thread) <- budget.(thread) - 1;
      Some (Types.Put (key (thread * 1000 + budget.(thread)), 8))
    end
  in
  let r = Runner.run ~store ~threads:3 ~start_at:0.0 ~gen () in
  Alcotest.(check int) "per-thread budgets honoured" 300 r.Runner.ops

let test_runner_splits_get_put () =
  let store = (Stores.chameleon tiny_scale).Stores.make () in
  let i = ref 0 in
  let r =
    Runner.run_ops ~store ~threads:2 ~start_at:0.0 ~ops:100
      ~next:(fun () ->
        incr i;
        if !i mod 2 = 0 then Types.Get (key !i) else Types.Put (key !i, 8))
      ()
  in
  Alcotest.(check int) "gets" 50 (Metrics.Histogram.count r.Runner.get_latency);
  Alcotest.(check int) "puts" 50 (Metrics.Histogram.count r.Runner.put_latency)

let test_runner_restores_thread_count () =
  let store = (Stores.chameleon tiny_scale).Stores.make () in
  let dev = (Store_intf.device store) in
  Pmem_sim.Device.set_active_threads dev 3;
  let _ =
    Runner.run_ops ~store ~threads:8 ~start_at:0.0 ~ops:10
      ~next:(fun () -> Types.Get 1L)
      ()
  in
  Alcotest.(check int) "restored" 3 (Pmem_sim.Device.active_threads dev)

(* -------------------------------- Timeline ------------------------------- *)

let test_timeline_windows () =
  let store = (Stores.chameleon tiny_scale).Stores.make () in
  let remaining = ref 5_000 in
  let gen ~thread:_ ~now:_ =
    if !remaining = 0 then None
    else begin
      decr remaining;
      Some (Types.Put (key !remaining, 8))
    end
  in
  let windows =
    Timeline.run ~store ~threads:2 ~start_at:0.0 ~window_ns:100_000.0 ~gen ()
  in
  Alcotest.(check bool) "has windows" true (List.length windows > 1);
  let total = List.fold_left (fun a w -> a + w.Timeline.ops) 0 windows in
  Alcotest.(check int) "ops conserved" 5_000 total;
  let rec ordered = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "time-ordered" true
        (a.Timeline.t_start < b.Timeline.t_start);
      ordered rest
    | _ -> ()
  in
  ordered windows;
  List.iter
    (fun w ->
      Alcotest.(check int) "puts+gets=ops" w.Timeline.ops
        (w.Timeline.puts + w.Timeline.gets))
    windows

(* --------------------------------- Stores -------------------------------- *)

let test_stores_zoo () =
  let specs = Stores.all tiny_scale in
  Alcotest.(check int) "eight stores" 8 (List.length specs);
  List.iter
    (fun spec ->
      let h = spec.Stores.make () in
      Alcotest.(check string) "name matches" spec.Stores.name
        (Store_intf.name h))
    specs;
  Alcotest.(check bool) "find works" true
    ((Stores.find tiny_scale "Dram-Hash").Stores.name = "Dram-Hash");
  Alcotest.(check bool) "find unknown raises" true
    (try
       ignore (Stores.find tiny_scale "nope");
       false
     with Invalid_argument _ -> true)

let test_load_unique () =
  let store = (Stores.chameleon tiny_scale).Stores.make () in
  let r =
    Stores.load_unique ~store ~threads:2 ~start_at:0.0 ~n:500 ~vlen:8
  in
  Alcotest.(check int) "loaded" 500 r.Runner.ops;
  let c = Clock.create ~at:(Stores.settled_cursor ~store r) () in
  for i = 0 to 499 do
    if (Store_intf.read store c (key i)).Store_intf.loc = None then
      Alcotest.failf "key %d missing after load" i
  done

let test_settled_cursor_past_backlog () =
  let store = (Stores.chameleon tiny_scale).Stores.make () in
  let r =
    Stores.load_unique ~store ~threads:2 ~start_at:0.0 ~n:2_000 ~vlen:8
  in
  let cursor = Stores.settled_cursor ~store r in
  Alcotest.(check bool) "cursor >= end" true (cursor >= r.Runner.end_ns)

let test_uniform_get_gen () =
  let gen = Stores.uniform_get_gen ~seed:3 ~universe:100 in
  for _ = 1 to 200 do
    match gen () with
    | Types.Get k ->
      let found = ref false in
      for i = 0 to 99 do
        if Int64.equal (key i) k then found := true
      done;
      Alcotest.(check bool) "within universe" true !found
    | _ -> Alcotest.fail "expected get"
  done

(* ------------------------------- Experiments ----------------------------- *)

let test_experiment_registry () =
  let ids = Experiments.ids () in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun must ->
      Alcotest.(check bool) ("has " ^ must) true (List.mem must ids))
    [ "fig1"; "fig2"; "fig3"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14";
      "fig15"; "fig16"; "fig17"; "tab1"; "tab4"; "tab5"; "wa" ]

let test_experiment_unknown_id () =
  Alcotest.(check bool) "unknown id rejected" true
    (try
       Experiments.run_ids ~scale:tiny_scale [ "nope" ];
       false
     with Invalid_argument _ -> true)

let test_experiment_smoke () =
  (* cheap experiments actually run end-to-end *)
  Experiments.run_ids ~scale:tiny_scale [ "tab1"; "tab5" ]

let test_summary_of_result () =
  let store = (Stores.chameleon tiny_scale).Stores.make () in
  (* enough entries that log batches persist within the measured run *)
  let r =
    Stores.load_unique ~store ~threads:1 ~start_at:0.0 ~n:400 ~vlen:8
  in
  let s = Runner.summary ~name:"x" ~user_bytes:9600.0 r in
  Alcotest.(check bool) "throughput carried" true
    (Metrics.Summary.throughput_mops s > 0.0);
  Alcotest.(check bool) "wa computed" true
    (Metrics.Summary.write_amplification s > 0.0)


let test_trace_through_runner () =
  (* a recorded trace drives the runner; ops and results are conserved *)
  let g = Workload.Ycsb.create ~seed:21 ~mix:Workload.Ycsb.F ~loaded:500 () in
  let t =
    Workload.Trace.record ~n:2_000 ~gen:(fun () -> Workload.Ycsb.next g)
  in
  let run () =
    let store = (Stores.chameleon tiny_scale).Stores.make () in
    let load =
      Stores.load_unique ~store ~threads:2 ~start_at:0.0 ~n:500 ~vlen:8
    in
    let next = Workload.Trace.replayer t in
    let r =
      Runner.run ~store ~threads:4
        ~start_at:(Stores.settled_cursor ~store load)
        ~gen:(fun ~thread:_ ~now:_ -> next ())
        ()
    in
    (r.Runner.ops, Runner.sim_ns r)
  in
  let ops1, ns1 = run () in
  let ops2, ns2 = run () in
  Alcotest.(check int) "all ops replayed" 2_000 ops1;
  Alcotest.(check int) "deterministic ops" ops1 ops2;
  Alcotest.(check (float 0.0)) "deterministic simulated time" ns1 ns2

let test_uniform_get_gen_deterministic () =
  let a = Stores.uniform_get_gen ~seed:5 ~universe:50 in
  let b = Stores.uniform_get_gen ~seed:5 ~universe:50 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "same stream" true (a () = b ())
  done

let test_runner_empty_generators () =
  let store = (Stores.chameleon tiny_scale).Stores.make () in
  let r =
    Runner.run ~store ~threads:4 ~start_at:0.0
      ~gen:(fun ~thread:_ ~now:_ -> None)
      ()
  in
  Alcotest.(check int) "no ops" 0 r.Runner.ops;
  Alcotest.(check (float 0.0)) "no time" 0.0 (Runner.sim_ns r)

let () =
  Alcotest.run "harness"
    [ ( "runner",
        [ Alcotest.test_case "counts ops" `Quick test_runner_counts_ops;
          Alcotest.test_case "start_at" `Quick test_runner_start_at;
          Alcotest.test_case "generator-driven" `Quick
            test_runner_generator_driven;
          Alcotest.test_case "splits get/put latencies" `Quick
            test_runner_splits_get_put;
          Alcotest.test_case "restores device thread count" `Quick
            test_runner_restores_thread_count ] );
      ( "integration",
        [ Alcotest.test_case "trace through runner" `Quick
            test_trace_through_runner;
          Alcotest.test_case "uniform gen deterministic" `Quick
            test_uniform_get_gen_deterministic;
          Alcotest.test_case "empty generators" `Quick
            test_runner_empty_generators ] );
      ( "timeline",
        [ Alcotest.test_case "windows" `Quick test_timeline_windows ] );
      ( "stores",
        [ Alcotest.test_case "zoo" `Quick test_stores_zoo;
          Alcotest.test_case "load_unique" `Quick test_load_unique;
          Alcotest.test_case "settled cursor" `Quick
            test_settled_cursor_past_backlog;
          Alcotest.test_case "uniform get gen" `Quick test_uniform_get_gen ] );
      ( "experiments",
        [ Alcotest.test_case "registry" `Quick test_experiment_registry;
          Alcotest.test_case "unknown id" `Quick test_experiment_unknown_id;
          Alcotest.test_case "smoke (tab1, tab5)" `Quick test_experiment_smoke;
          Alcotest.test_case "summary" `Quick test_summary_of_result ] ) ]
