module Config = Chameleondb.Config
module Store = Chameleondb.Store
module Clock = Pmem_sim.Clock
module Types = Kv_common.Types
module Vlog = Kv_common.Vlog
module SI = Kv_common.Store_intf
module Checker = Fault.Checker
module Sweep = Fault.Sweep

let key i = Workload.Keyspace.key_of_index i

let put db c k ~vlen = Store.write db c k (SI.Sized vlen)
let get db c k = (Store.read db c k).SI.loc

let small_cfg =
  { Config.default with Config.shards = 4; memtable_slots = 32 }

let cached_cfg ?(cache_bytes = 1 lsl 20) ?(materialize = false) () =
  { small_cfg with
    Config.cache_bytes;
    materialize_values = materialize }

let counter name = Option.value ~default:0.0 (Obs.Counters.find name)

(* ------------------------- Cache unit semantics --------------------------- *)

let test_find_insert_invalidate () =
  let c = Clock.create () in
  let t = Cache.create ~shards:4 ~capacity_bytes:4096 () in
  Alcotest.(check bool) "empty miss" true (Cache.find t c 1L = Cache.Miss);
  Cache.insert t c 1L ~loc:5 ~vlen:8 ();
  (match Cache.find t c 1L with
  | Cache.Hit { loc; vlen; value } ->
    Alcotest.(check int) "loc" 5 loc;
    Alcotest.(check int) "vlen" 8 vlen;
    Alcotest.(check bool) "no payload retained" true (value = None)
  | _ -> Alcotest.fail "expected hit");
  (* re-insert replaces, it does not double-charge *)
  Cache.insert t c 1L ~loc:9 ~vlen:8 ();
  (match Cache.find t c 1L with
  | Cache.Hit { loc; _ } -> Alcotest.(check int) "replaced loc" 9 loc
  | _ -> Alcotest.fail "expected hit after replace");
  Alcotest.(check int) "charged once" (Cache.entry_overhead_bytes + 8)
    (Cache.used_bytes t);
  Cache.insert t c 2L ~loc:7 ~vlen:4 ~value:(Bytes.of_string "abcd") ();
  (match Cache.find t c 2L with
  | Cache.Hit { value = Some v; _ } ->
    Alcotest.(check string) "payload served" "abcd" (Bytes.to_string v)
  | _ -> Alcotest.fail "expected materialized hit");
  Cache.invalidate t c 1L;
  Alcotest.(check bool) "invalidated" true (Cache.find t c 1L = Cache.Miss);
  Cache.clear t;
  Alcotest.(check int) "clear empties" 0 (Cache.used_bytes t);
  Alcotest.(check bool) "cleared" true (Cache.find t c 2L = Cache.Miss)

let test_negative_semantics () =
  let c = Clock.create () in
  let t = Cache.create ~shards:2 ~capacity_bytes:1024 () in
  Cache.insert_negative t c 3L;
  Alcotest.(check bool) "negative hit" true (Cache.find t c 3L = Cache.Negative);
  Cache.invalidate t c 3L;
  Alcotest.(check bool) "negative invalidated" true
    (Cache.find t c 3L = Cache.Miss);
  let off = Cache.create ~negative:false ~shards:2 ~capacity_bytes:1024 () in
  Cache.insert_negative off c 3L;
  Alcotest.(check bool) "disabled is a no-op" true
    (Cache.find off c 3L = Cache.Miss);
  Alcotest.(check bool) "flag readable" true
    (Cache.negative_enabled t && not (Cache.negative_enabled off))

let test_clock_eviction_bounds_capacity () =
  let c = Clock.create () in
  (* one segment, room for exactly five vlen-8 entries *)
  let per = 5 * (Cache.entry_overhead_bytes + 8) in
  let t = Cache.create ~shards:1 ~capacity_bytes:per () in
  for i = 0 to 4 do
    Cache.insert t c (Int64.of_int i) ~loc:i ~vlen:8 ();
    Alcotest.(check bool) "bounded" true (Cache.used_bytes t <= per)
  done;
  (* a sixth entry forces a CLOCK revolution; the oldest unreferenced
     entry goes *)
  Cache.insert t c 5L ~loc:5 ~vlen:8 ();
  Alcotest.(check bool) "still bounded" true (Cache.used_bytes t <= per);
  Alcotest.(check bool) "victim evicted" true (Cache.find t c 0L = Cache.Miss);
  (* second chance: a referenced entry survives the next eviction wave *)
  (match Cache.find t c 1L with
  | Cache.Hit _ -> ()
  | _ -> Alcotest.fail "entry 1 should still be resident");
  Cache.insert t c 6L ~loc:6 ~vlen:8 ();
  (match Cache.find t c 1L with
  | Cache.Hit _ -> ()
  | _ -> Alcotest.fail "referenced entry lost its second chance");
  Alcotest.(check bool) "bounded after churn" true (Cache.used_bytes t <= per);
  (* an entry larger than the whole segment is not cached *)
  Cache.insert t c 7L ~loc:7 ~vlen:(2 * per) ();
  Alcotest.(check bool) "oversized rejected" true (Cache.find t c 7L = Cache.Miss)

let test_relocate_guard () =
  let c = Clock.create () in
  let t = Cache.create ~shards:1 ~capacity_bytes:1024 () in
  Cache.insert t c 1L ~loc:5 ~vlen:8 ();
  Cache.relocate t c 1L ~expect:4 ~loc:99;
  (match Cache.find t c 1L with
  | Cache.Hit { loc; _ } -> Alcotest.(check int) "guard holds" 5 loc
  | _ -> Alcotest.fail "expected hit");
  Cache.relocate t c 1L ~expect:5 ~loc:9;
  (match Cache.find t c 1L with
  | Cache.Hit { loc; _ } -> Alcotest.(check int) "relocated" 9 loc
  | _ -> Alcotest.fail "expected hit");
  (* negative entries never relocate *)
  Cache.insert_negative t c 2L;
  Cache.relocate t c 2L ~expect:Types.tombstone ~loc:3;
  Alcotest.(check bool) "negative untouched" true
    (Cache.find t c 2L = Cache.Negative)

(* ----------------------- Store-level invalidation ------------------------- *)

let test_put_delete_invalidate_inline () =
  let db = Store.create ~cfg:(cached_cfg ~materialize:true ()) () in
  let c = Clock.create () in
  let k = key 7 in
  let read_v () = (Store.read db c k).SI.value in
  Store.write db c k (SI.Payload (Bytes.of_string "alpha"));
  Alcotest.(check (option string)) "first read" (Some "alpha")
    (Option.map Bytes.to_string (read_v ()));
  (* the first read cached the entry; an overwrite must not serve it *)
  Store.write db c k (SI.Payload (Bytes.of_string "beta"));
  Alcotest.(check (option string)) "overwrite visible" (Some "beta")
    (Option.map Bytes.to_string (read_v ()));
  Store.flush_all db c;
  Store.write db c k (SI.Payload (Bytes.of_string "gamma"));
  Alcotest.(check (option string)) "post-flush overwrite" (Some "gamma")
    (Option.map Bytes.to_string (read_v ()));
  Store.delete db c k;
  Alcotest.(check bool) "delete visible through cache" true
    ((Store.read db c k).SI.loc = None);
  Store.write db c k (SI.Payload (Bytes.of_string "delta"));
  Alcotest.(check (option string)) "reinsert after delete" (Some "delta")
    (Option.map Bytes.to_string (read_v ()))

let test_negative_cache_coherent_after_reinsert () =
  let db = Store.create ~cfg:(cached_cfg ~materialize:true ()) () in
  let c = Clock.create () in
  let k = key 42 in
  Alcotest.(check bool) "absent" true ((Store.read db c k).SI.loc = None);
  (* the second miss is served from the negative entry *)
  let r = Store.read db c k in
  Alcotest.(check bool) "negative served from cache" true
    (r.SI.loc = None && r.SI.stage = SI.Cache);
  Store.write db c k (SI.Payload (Bytes.of_string "back"));
  let r = Store.read db c k in
  Alcotest.(check (option string)) "reinsertion unmasked" (Some "back")
    (Option.map Bytes.to_string r.SI.value)

let test_gc_relocates_cached_locations () =
  let db = Store.create ~cfg:(cached_cfg ~materialize:true ()) () in
  let c = Clock.create () in
  let n = 1_000 in
  let payload round i = Bytes.of_string (Printf.sprintf "r%d-%d" round i) in
  for round = 1 to 3 do
    for i = 0 to n - 1 do
      Store.write db c (key i) (SI.Payload (payload round i))
    done
  done;
  (* populate the cache with current locations, then move the whole log *)
  for i = 0 to n - 1 do
    ignore (Store.read db c (key i))
  done;
  let reloc0 = counter "cache.relocations" in
  let stats = Store.gc db c ~max_entries:(3 * n) () in
  Alcotest.(check int) "all live versions copied" n stats.Store.gc_live;
  Alcotest.(check bool) "cached locations rewritten" true
    (counter "cache.relocations" -. reloc0 >= float_of_int (n / 2));
  let vlog = Store.vlog db in
  for i = 0 to n - 1 do
    match Store.read db c (key i) with
    | { SI.loc = Some loc; value = Some v; _ } ->
      if Bytes.to_string v <> Bytes.to_string (payload 3 i) then
        Alcotest.failf "key %d served stale value %s" i (Bytes.to_string v);
      (* the cached location must point at the relocated record *)
      if Vlog.key_at vlog loc <> key i then
        Alcotest.failf "key %d cached a dangling location" i
    | _ -> Alcotest.failf "key %d lost across GC" i
  done

let test_crash_drops_cache () =
  let db = Store.create ~cfg:(cached_cfg ()) () in
  let c = Clock.create () in
  put db c (key 1) ~vlen:8;
  Store.flush_all db c;
  (* an unpersisted tail write, read back through the cache *)
  put db c (key 2) ~vlen:8;
  Alcotest.(check bool) "tail visible before crash" true
    (get db c (key 2) <> None);
  Store.crash db;
  (match Store.cache_stats db with
  | Some (used, _) -> Alcotest.(check int) "cache emptied by crash" 0 used
  | None -> Alcotest.fail "cache expected");
  let rc = Clock.create ~at:(Clock.now c) () in
  ignore (Store.recover db rc);
  Alcotest.(check bool) "persisted key survives" true
    (get db rc (key 1) <> None);
  Alcotest.(check bool) "rolled-back key not served from cache" true
    (get db rc (key 2) = None)

(* --------------------- Cached / uncached equivalence ---------------------- *)

(* The cache must be semantically invisible: an identical op sequence on a
   cached and an uncached store — across flushes, GC, and a crash — yields
   identical locations for every key. *)
let test_cached_matches_uncached () =
  let cached = Store.create ~cfg:(cached_cfg ~cache_bytes:(1 lsl 16) ()) () in
  let plain = Store.create ~cfg:small_cfg () in
  let c1 = Clock.create () and c2 = Clock.create () in
  let universe = 400 in
  let rng = Workload.Rng.create ~seed:17 in
  let both f = f cached c1; f plain c2 in
  let agree label =
    for i = 0 to universe - 1 do
      let a = get cached c1 (key i) in
      let b = get plain c2 (key i) in
      if a <> b then Alcotest.failf "%s: key %d diverged" label i
    done
  in
  for step = 1 to 4_000 do
    let k = key (Workload.Rng.int rng universe) in
    (match Workload.Rng.int rng 10 with
    | 0 -> both (fun db c -> Store.delete db c k)
    | 1 | 2 | 3 -> both (fun db c -> put db c k ~vlen:8)
    | _ -> both (fun db c -> ignore (get db c k)));
    if step mod 1_000 = 0 then both (fun db c -> Store.flush_all db c)
  done;
  agree "after mixed ops";
  both (fun db c -> ignore (Store.gc db c ~max_entries:2_000 ()));
  agree "after GC";
  both (fun db c -> Store.flush_all db c);
  both (fun db _ -> Store.crash db);
  let r1 = Clock.create ~at:(Clock.now c1) () in
  let r2 = Clock.create ~at:(Clock.now c2) () in
  ignore (Store.recover cached r1);
  ignore (Store.recover plain r2);
  for i = 0 to universe - 1 do
    let a = get cached r1 (key i) in
    let b = get plain r2 (key i) in
    if a <> b then Alcotest.failf "after crash+recover: key %d diverged" i
  done

(* ------------------------------ Footprint --------------------------------- *)

let test_dram_footprint_accounts_cache () =
  let cache_bytes = 1 lsl 16 in
  let cached = Store.create ~cfg:(cached_cfg ~cache_bytes ()) () in
  let plain = Store.create ~cfg:small_cfg () in
  let c1 = Clock.create () and c2 = Clock.create () in
  let n = 3_000 in
  for i = 0 to n - 1 do
    put cached c1 (key i) ~vlen:8;
    put plain c2 (key i) ~vlen:8
  done;
  for i = 0 to n - 1 do
    ignore (get cached c1 (key i));
    ignore (get plain c2 (key i))
  done;
  let used, cap =
    match Store.cache_stats cached with
    | Some (u, c) -> (u, c)
    | None -> Alcotest.fail "cache expected"
  in
  Alcotest.(check bool) "cache populated" true (used > 0);
  Alcotest.(check bool) "within configured capacity" true
    (used <= cap && cap <= cache_bytes);
  let diff = Store.dram_footprint cached -. Store.dram_footprint plain in
  Alcotest.(check (float 0.01)) "footprint delta is the cache"
    (float_of_int used) diff;
  Alcotest.(check bool) "uncached store has no cache stats" true
    (Store.cache_stats plain = None)

(* --------------------------- Fault injection ------------------------------ *)

(* Same scale as test_fault's checker cases, with the cache on top: stale
   cache entries surviving a crash would surface as resurrection
   violations here. *)
let cached_make () =
  let cfg =
    { (Harness.Stores.chameleon_cfg Harness.Stores.quick) with
      Config.cache_bytes = 1 lsl 20 }
  in
  Store.store (Store.create ~cfg ())

let test_checker_clean_run_with_cache () =
  let o = Checker.run_case ~make:cached_make ~ops:2_000 ~universe:200 ~seed:7 () in
  Alcotest.(check (list string)) "no violations" [] o.Checker.violations

let test_fault_sweep_with_cache () =
  let v =
    Sweep.run_store ~name:"ChameleonDB-cached" ~make:cached_make ~seeds:[ 1 ]
      ~per_site:3 ~ops:2_000 ~universe:200 ~tear:true ()
  in
  Alcotest.(check bool) "crashes fired" true (v.Sweep.v_fired > 0);
  if not (Sweep.passed v) then begin
    List.iter
      (fun f -> List.iter print_endline f.Sweep.f_violations)
      v.Sweep.v_failures;
    Alcotest.fail "fault sweep with cache enabled reported violations"
  end

let () =
  Alcotest.run "cache"
    [ ( "unit",
        [ Alcotest.test_case "find / insert / invalidate" `Quick
            test_find_insert_invalidate;
          Alcotest.test_case "negative entries" `Quick test_negative_semantics;
          Alcotest.test_case "CLOCK eviction bounds capacity" `Quick
            test_clock_eviction_bounds_capacity;
          Alcotest.test_case "relocate guard" `Quick test_relocate_guard ] );
      ( "store",
        [ Alcotest.test_case "put/delete invalidate in-line" `Quick
            test_put_delete_invalidate_inline;
          Alcotest.test_case "negative entry coherent after reinsert" `Quick
            test_negative_cache_coherent_after_reinsert;
          Alcotest.test_case "GC relocates cached locations" `Quick
            test_gc_relocates_cached_locations;
          Alcotest.test_case "crash drops the cache" `Quick
            test_crash_drops_cache;
          Alcotest.test_case "cached store matches uncached" `Quick
            test_cached_matches_uncached;
          Alcotest.test_case "dram footprint accounts the cache" `Quick
            test_dram_footprint_accounts_cache ] );
      ( "fault",
        [ Alcotest.test_case "checker clean run" `Quick
            test_checker_clean_run_with_cache;
          Alcotest.test_case "crash sweep, cache enabled" `Quick
            test_fault_sweep_with_cache ] ) ]
