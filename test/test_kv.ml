module Clock = Pmem_sim.Clock
module Device = Pmem_sim.Device
module CM = Pmem_sim.Cost_model
module Types = Kv_common.Types
module Hash = Kv_common.Hash
module Bloom = Kv_common.Bloom
module Flat = Kv_common.Flat_table
module LT = Kv_common.Linear_table
module RH = Kv_common.Robinhood
module SL = Kv_common.Skiplist
module Cceh = Kv_common.Cceh
module Vlog = Kv_common.Vlog

let key i = Workload.Keyspace.key_of_index i
let dev () = Device.create CM.optane

(* ---------------------------------- Hash --------------------------------- *)

let test_mix64_spreads () =
  (* consecutive integers land in distinct, well-spread buckets *)
  let seen = Hashtbl.create 64 in
  for i = 1 to 1000 do
    Hashtbl.replace seen (Hash.mix64 (Int64.of_int i)) ()
  done;
  Alcotest.(check int) "no collisions" 1000 (Hashtbl.length seen)

let test_to_int_nonneg () =
  Alcotest.(check bool) "min_int hash nonneg" true
    (Hash.to_int (Hash.mix64 Int64.min_int) >= 0)

let prop_to_int_nonneg =
  QCheck.Test.make ~name:"to_int always non-negative" ~count:1000
    QCheck.int64 (fun v -> Hash.to_int v >= 0)

let prop_slot_in_range =
  QCheck.Test.make ~name:"slot_of in range" ~count:500
    QCheck.(pair int64 (int_range 1 10_000))
    (fun (h, slots) ->
      let s = Hash.slot_of ~hash:h ~slots in
      s >= 0 && s < slots)

let prop_shard_in_range =
  QCheck.Test.make ~name:"shard_of in range" ~count:500
    QCheck.(pair int64 (int_range 1 16_384))
    (fun (h, shards) ->
      let s = Hash.shard_of ~hash:h ~shards in
      s >= 0 && s < shards)

let test_shard_balance () =
  let shards = 16 in
  let counts = Array.make shards 0 in
  let n = 16_000 in
  for i = 0 to n - 1 do
    let s = Hash.shard_of ~hash:(Hash.mix64 (key i)) ~shards in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d within 30%% of mean (%d)" s c)
        true
        (c > n / shards * 7 / 10 && c < n / shards * 13 / 10))
    counts

(* ---------------------------------- Bloom -------------------------------- *)

let test_bloom_no_false_negative () =
  let b = Bloom.create ~expected:1000 ~bits_per_key:10 in
  let c = Clock.create () in
  for i = 0 to 999 do
    Bloom.add b c (key i)
  done;
  for i = 0 to 999 do
    Alcotest.(check bool) "member" true (Bloom.mem b c (key i))
  done

let test_bloom_fp_rate () =
  let b = Bloom.create ~expected:10_000 ~bits_per_key:10 in
  for i = 0 to 9_999 do
    Bloom.add_silent b (key i)
  done;
  let fps = ref 0 in
  for i = 10_000 to 19_999 do
    if Bloom.mem_silent b (key i) then incr fps
  done;
  (* 10 bits/key -> ~1% theoretical; accept < 5% *)
  Alcotest.(check bool)
    (Printf.sprintf "fp rate %d/10000" !fps)
    true (!fps < 500)

let test_bloom_charges_time () =
  let b = Bloom.create ~expected:16 ~bits_per_key:10 in
  let c = Clock.create () in
  Bloom.add b c 1L;
  let t1 = Clock.now c in
  ignore (Bloom.mem b c 1L);
  Alcotest.(check bool) "build charged" true (t1 > 0.0);
  Alcotest.(check bool) "check charged" true (Clock.now c > t1)

let prop_bloom_never_false_negative =
  QCheck.Test.make ~name:"bloom: no false negatives" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (int_range 1 1_000_000))
    (fun ixs ->
      let b = Bloom.create ~expected:(List.length ixs) ~bits_per_key:8 in
      List.iter (fun i -> Bloom.add_silent b (key i)) ixs;
      List.for_all (fun i -> Bloom.mem_silent b (key i)) ixs)

(* -------------------------------- Flat_table ----------------------------- *)

let test_flat_put_get () =
  let t = Flat.create ~slots:64 () in
  let c = Clock.create () in
  Alcotest.(check bool) "absent" true (Flat.get t c 1L = None);
  Alcotest.(check bool) "insert ok" true (Flat.put t c 1L 10 = `Ok);
  Alcotest.(check bool) "present" true (Flat.get t c 1L = Some 10);
  Alcotest.(check bool) "update ok" true (Flat.put t c 1L 20 = `Ok);
  Alcotest.(check bool) "updated" true (Flat.get t c 1L = Some 20);
  Alcotest.(check int) "count counts keys" 1 (Flat.count t)

let test_flat_full () =
  let t = Flat.create ~load_factor:0.5 ~slots:8 () in
  let c = Clock.create () in
  for i = 1 to 4 do
    Alcotest.(check bool) "fits" true (Flat.put t c (key i) i = `Ok)
  done;
  Alcotest.(check bool) "is_full" true (Flat.is_full t);
  Alcotest.(check bool) "new key rejected" true
    (Flat.put t c (key 99) 0 = `Full);
  (* updates of existing keys still work at capacity *)
  Alcotest.(check bool) "update allowed" true (Flat.put t c (key 1) 7 = `Ok)

let test_flat_clear_iter () =
  let t = Flat.create ~slots:32 () in
  let c = Clock.create () in
  for i = 1 to 10 do
    Flat.put_exn t c (key i) i
  done;
  let n = ref 0 in
  Flat.iter t (fun _ _ -> incr n);
  Alcotest.(check int) "iterates all" 10 !n;
  Flat.clear t;
  Alcotest.(check int) "cleared" 0 (Flat.count t);
  Alcotest.(check bool) "get after clear" true (Flat.get t c (key 1) = None)

let test_flat_tombstone_values () =
  let t = Flat.create ~slots:16 () in
  let c = Clock.create () in
  Flat.put_exn t c 5L Types.tombstone;
  Alcotest.(check bool) "tombstone stored" true
    (Flat.get t c 5L = Some Types.tombstone)

let prop_flat_vs_model =
  QCheck.Test.make ~name:"flat_table matches model map" ~count:100
    QCheck.(list (pair (int_range 1 50) (int_range 0 1_000)))
    (fun ops ->
      let t = Flat.create ~load_factor:0.9 ~slots:256 () in
      let c = Clock.create () in
      let m = Hashtbl.create 64 in
      List.for_all
        (fun (k, v) ->
          let kk = key k in
          match Flat.put t c kk v with
          | `Ok ->
            Hashtbl.replace m kk v;
            Flat.get t c kk = Some v
          | `Full -> not (Hashtbl.mem m kk))
        ops
      && Hashtbl.fold (fun k v acc -> acc && Flat.get t c k = Some v) m true)

(* ------------------------------- Linear_table ---------------------------- *)

let test_lt_build_get () =
  let d = dev () in
  let c = Clock.create () in
  let entries = List.init 50 (fun i -> (key i, i * 3)) in
  let t = LT.build d c ~slots:128 entries in
  Alcotest.(check int) "count" 50 (LT.count t);
  List.iter
    (fun (k, v) ->
      Alcotest.(check bool) "present" true (LT.get t c k = LT.Found v))
    entries;
  Alcotest.(check bool) "absent" true (LT.get t c (key 999) = LT.Absent)

let test_lt_later_binding_wins () =
  let d = dev () in
  let c = Clock.create () in
  let t = LT.build d c ~slots:16 [ (7L, 1); (7L, 2) ] in
  Alcotest.(check bool) "newest wins" true (LT.get t c 7L = LT.Found 2);
  Alcotest.(check int) "deduped" 1 (LT.count t)

let test_lt_overfull_rejected () =
  let d = dev () in
  let c = Clock.create () in
  let entries = List.init 20 (fun i -> (key i, i)) in
  Alcotest.check_raises "overfull"
    (Invalid_argument "Linear_table.build: overfull") (fun () ->
      ignore (LT.build d c ~slots:16 entries))

let test_lt_iter_and_silent () =
  let d = dev () in
  let c = Clock.create () in
  let entries = List.init 30 (fun i -> (key i, i)) in
  let t = LT.build d c ~slots:64 entries in
  let seen = Hashtbl.create 32 in
  LT.iter t c (fun k v -> Hashtbl.replace seen k v);
  Alcotest.(check int) "iter count" 30 (Hashtbl.length seen);
  let seen2 = Hashtbl.create 32 in
  LT.iter_silent t (fun k v -> Hashtbl.replace seen2 k v);
  Alcotest.(check int) "silent count" 30 (Hashtbl.length seen2);
  let r, probes = LT.get_silent t (key 3) in
  Alcotest.(check bool) "silent get" true (r = Some 3);
  Alcotest.(check bool) "probes >= 1" true (probes >= 1)

let test_lt_persists_to_device () =
  let d = dev () in
  let c = Clock.create () in
  let t = LT.build d c ~slots:16 [ (1L, 1) ] in
  Device.crash d;
  (* built tables are persisted: crash must not lose them *)
  Alcotest.(check bool) "survives crash" true (LT.get t c 1L = LT.Found 1)

let test_lt_media_accounting () =
  let d = dev () in
  let c = Clock.create () in
  let before = (Device.stats d).Pmem_sim.Stats.media_write_bytes in
  ignore (LT.build d c ~slots:256 [ (1L, 1) ]);
  let delta = (Device.stats d).Pmem_sim.Stats.media_write_bytes -. before in
  Alcotest.(check (float 0.0)) "one table write" (float_of_int (256 * 16))
    delta

let test_lt_tag () =
  let d = dev () in
  let c = Clock.create () in
  let t = LT.build d c ~slots:16 [] in
  Alcotest.(check int) "default tag" 0 (LT.tag t);
  LT.set_tag t 42;
  Alcotest.(check int) "set tag" 42 (LT.tag t)

let prop_lt_vs_model =
  QCheck.Test.make ~name:"linear_table build matches model" ~count:100
    QCheck.(list (pair (int_range 1 60) small_nat))
    (fun pairs ->
      let d = dev () in
      let c = Clock.create () in
      let t =
        LT.build d c ~slots:256 (List.map (fun (k, v) -> (key k, v)) pairs)
      in
      let m = Hashtbl.create 64 in
      List.iter (fun (k, v) -> Hashtbl.replace m (key k) v) pairs;
      Hashtbl.fold (fun k v acc -> acc && LT.get t c k = LT.Found v) m true)

(* ----------------------------- Sorted runs ------------------------------- *)

let test_lt_sorted_build_get () =
  let d = dev () in
  let c = Clock.create () in
  (* shuffled input with a duplicate: build sorts and keeps the last binding *)
  let entries =
    [ (key 30, 1); (key 10, 2); (key 50, 3); (key 20, 4); (key 40, 5);
      (key 10, 99) ]
  in
  let t = LT.build_sorted d c entries in
  Alcotest.(check bool) "sorted" true (LT.is_sorted t);
  Alcotest.(check bool) "hashed build is not" false
    (LT.is_sorted (LT.build d c ~slots:16 [ (1L, 1) ]));
  Alcotest.(check int) "deduped count" 5 (LT.count t);
  Alcotest.(check bool) "last binding wins" true
    (LT.get t c (key 10) = LT.Found 99);
  List.iter
    (fun (k, v) ->
      Alcotest.(check bool) "point get" true (LT.get t c (key k) = LT.Found v))
    [ (20, 4); (30, 1); (40, 5); (50, 3) ];
  Alcotest.(check bool) "absent" true (LT.get t c (key 25) = LT.Absent);
  Alcotest.(check bool) "fence index in DRAM" true (LT.dram_bytes t > 0);
  (* iter streams in ascending key order *)
  let seen = ref [] in
  LT.iter t c (fun k _ -> seen := k :: !seen);
  let keys = List.rev !seen in
  Alcotest.(check int) "iter count" 5 (List.length keys);
  Alcotest.(check bool) "iter ascending" true
    (List.sort Types.key_compare keys = keys)

let test_lt_sorted_cursor () =
  let d = dev () in
  let c = Clock.create () in
  let n = 200 in
  let entries = List.init n (fun i -> (key i, i)) in
  let t = LT.build_sorted d c entries in
  (* start mid-range: first entry is the smallest key >= start *)
  let sorted_keys = List.sort Types.key_compare (List.map fst entries) in
  let start = List.nth sorted_keys (n / 2) in
  let cur = LT.cursor t c ~start in
  let rec drain acc =
    match LT.cursor_next cur with
    | `Entry (k, _) -> drain (k :: acc)
    | `End -> List.rev acc
    | `Corrupt -> Alcotest.fail "cursor corrupt on a healthy run"
  in
  let got = drain [] in
  let want =
    List.filter (fun k -> Types.key_compare k start >= 0) sorted_keys
  in
  Alcotest.(check bool) "cursor yields exactly the suffix" true (got = want);
  (* past the end *)
  let last = List.nth sorted_keys (n - 1) in
  let cur2 = LT.cursor t c ~start:(Int64.add last 1L) in
  Alcotest.(check bool) "past-end cursor is empty" true
    (LT.cursor_next cur2 = `End);
  (* hashed runs have no order to expose *)
  let h = LT.build d c ~slots:16 [ (1L, 1) ] in
  match LT.cursor h c ~start:0L with
  | _ -> Alcotest.fail "cursor on hashed run accepted"
  | exception Invalid_argument _ -> ()

let test_lt_sorted_cursor_lazy () =
  (* a short scan must not pay for the whole run: one unit read, not all *)
  let d = dev () in
  let c = Clock.create () in
  let n = 4_096 in
  let t = LT.build_sorted d c (List.init n (fun i -> (key i, i))) in
  let before = (Device.stats d).Pmem_sim.Stats.media_read_bytes in
  let cur = LT.cursor t c ~start:0L in
  (match LT.cursor_next cur with
  | `Entry _ -> ()
  | _ -> Alcotest.fail "empty cursor");
  let delta = (Device.stats d).Pmem_sim.Stats.media_read_bytes -. before in
  Alcotest.(check bool)
    (Printf.sprintf "one unit touched, not the whole run (read %.0f B)" delta)
    true
    (delta > 0.0 && delta < float_of_int (LT.byte_size t) /. 4.0)

(* ------------------------------ Scan algebra ----------------------------- *)

module Scan = Kv_common.Scan

let drain_stream s =
  let rec go acc =
    match s () with
    | Scan.Next e -> go (e :: acc)
    | Scan.Done -> (List.rev acc, `Ok)
    | Scan.Error -> (List.rev acc, `Corrupt)
  in
  go []

let test_scan_merge_newest_wins () =
  (* same key in several streams: the earliest stream in the list wins *)
  let newest = Scan.of_sorted [ (2L, 20); (4L, 40) ] in
  let mid = Scan.of_sorted [ (1L, 100); (2L, 200) ] in
  let oldest = Scan.of_sorted [ (2L, 2000); (3L, 3000); (4L, 4000) ] in
  let got, status = drain_stream (Scan.merge [ newest; mid; oldest ]) in
  Alcotest.(check bool) "clean" true (status = `Ok);
  Alcotest.(check bool) "newest wins on ties, order kept" true
    (got = [ (1L, 100); (2L, 20); (3L, 3000); (4L, 40) ])

let test_scan_tombstone_masks_then_drops () =
  (* tombstone in the newer stream must mask the older binding through the
     merge, then vanish under [live] *)
  let newer () = Scan.of_sorted [ (2L, Types.tombstone) ] in
  let older () = Scan.of_sorted [ (1L, 10); (2L, 20); (3L, 30) ] in
  let merged, _ = drain_stream (Scan.merge [ newer (); older () ]) in
  Alcotest.(check bool) "tombstone survives merge" true
    (List.exists (fun (k, l) -> k = 2L && Types.is_tombstone l) merged);
  let live, status =
    drain_stream (Scan.live (Scan.merge [ newer (); older () ]))
  in
  Alcotest.(check bool) "clean" true (status = `Ok);
  Alcotest.(check bool) "deleted key gone, not resurrected" true
    (live = [ (1L, 10); (3L, 30) ])

let test_scan_error_fail_stop () =
  (* one broken source poisons the merged stream; entries pulled before the
     failure are kept, status reports corruption *)
  let fine = Scan.of_sorted [ (1L, 10); (5L, 50) ] in
  let broken =
    let n = ref 0 in
    fun () ->
      incr n;
      if !n = 1 then Scan.Next (2L, 20) else Scan.Error
  in
  let entries, status = Scan.take (Scan.merge [ fine; broken ]) ~limit:10 in
  Alcotest.(check bool) "corrupt reported" true (status = `Corrupt);
  Alcotest.(check bool) "prefix before failure kept" true
    (List.for_all (fun (k, _) -> k < 3L) entries);
  (* fail-stop: pulling again still errors *)
  let s = Scan.merge [ broken ] in
  ignore (s ());
  Alcotest.(check bool) "sticky" true (s () = Scan.Error && s () = Scan.Error)

let test_scan_take_and_of_iter () =
  let c = Clock.create () in
  let tbl = [ (5L, 1); (1L, 2); (9L, 3); (3L, 4) ] in
  let s =
    Scan.of_iter c ~start:3L (fun f -> List.iter (fun (k, v) -> f k v) tbl)
  in
  let entries, status = Scan.take s ~limit:2 in
  Alcotest.(check bool) "clean" true (status = `Ok);
  Alcotest.(check bool) "sorted, filtered, limited" true
    (entries = [ (3L, 4); (5L, 1) ])

(* -------------------------------- Robinhood ------------------------------ *)

let test_rh_basic () =
  let t = RH.create () in
  let c = Clock.create () in
  RH.put t c 1L 10;
  RH.put t c 2L 20;
  Alcotest.(check bool) "get 1" true (RH.get t c 1L = Some 10);
  Alcotest.(check bool) "get 2" true (RH.get t c 2L = Some 20);
  Alcotest.(check bool) "absent" true (RH.get t c 3L = None);
  Alcotest.(check bool) "delete" true (RH.delete t c 1L);
  Alcotest.(check bool) "gone" true (RH.get t c 1L = None);
  Alcotest.(check bool) "delete absent" false (RH.delete t c 1L);
  Alcotest.(check int) "count" 1 (RH.count t)

let test_rh_grows () =
  let t = RH.create ~initial_slots:8 () in
  let c = Clock.create () in
  for i = 1 to 1000 do
    RH.put t c (key i) i
  done;
  Alcotest.(check int) "all inserted" 1000 (RH.count t);
  Alcotest.(check bool) "rehashed" true (RH.rehash_count t > 0);
  Alcotest.(check bool) "capacity grew" true (RH.capacity t >= 1024);
  for i = 1 to 1000 do
    Alcotest.(check bool) "still present" true (RH.get t c (key i) = Some i)
  done

let test_rh_rehash_latency_spike () =
  let t = RH.create ~initial_slots:8 () in
  let c = Clock.create () in
  let worst = ref 0.0 in
  for i = 1 to 10_000 do
    let t0 = Clock.now c in
    RH.put t c (key i) i;
    worst := Float.max !worst (Clock.now c -. t0)
  done;
  (* the final doubling rehashes >= 8192 slots at >= 4 ns each *)
  Alcotest.(check bool) "rehash pause visible" true (!worst >= 8192.0 *. 4.0)

let prop_rh_vs_model =
  QCheck.Test.make ~name:"robinhood matches model incl. deletes" ~count:100
    QCheck.(list (pair (int_range 1 100) (option small_nat)))
    (fun ops ->
      let t = RH.create ~initial_slots:8 () in
      let c = Clock.create () in
      let m = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          let kk = key k in
          match v with
          | Some v ->
            RH.put t c kk v;
            Hashtbl.replace m kk v
          | None ->
            ignore (RH.delete t c kk);
            Hashtbl.remove m kk)
        ops;
      Hashtbl.fold (fun k v acc -> acc && RH.get t c k = Some v) m true
      && RH.count t = Hashtbl.length m)

(* --------------------------------- Skiplist ------------------------------ *)

let test_sl_sorted_iteration () =
  let d = dev () in
  let t = SL.create d in
  let c = Clock.create () in
  let keys = [ 50L; 10L; 30L; 20L; 40L ] in
  List.iteri (fun i k -> SL.put t c k i) keys;
  let order = ref [] in
  SL.iter t (fun k _ -> order := k :: !order);
  Alcotest.(check (list int64)) "ascending" [ 10L; 20L; 30L; 40L; 50L ]
    (List.rev !order);
  Alcotest.(check int) "count" 5 (SL.count t)

let test_sl_update_in_place () =
  let d = dev () in
  let t = SL.create d in
  let c = Clock.create () in
  SL.put t c 5L 1;
  SL.put t c 5L 2;
  Alcotest.(check int) "count unchanged" 1 (SL.count t);
  Alcotest.(check bool) "newest" true (SL.get t c 5L = Some 2)

let test_sl_pmem_traffic () =
  let d = dev () in
  let t = SL.create d in
  let c = Clock.create () in
  for i = 1 to 100 do
    SL.put t c (key i) i
  done;
  let st = Device.stats d in
  (* every insert persists small writes in place: heavy amplification *)
  Alcotest.(check bool) "media write per insert" true
    (st.Pmem_sim.Stats.media_write_bytes >= 100.0 *. 256.0)

let test_sl_clear () =
  let d = dev () in
  let t = SL.create d in
  let c = Clock.create () in
  SL.put t c 1L 1;
  SL.clear t;
  Alcotest.(check int) "count" 0 (SL.count t);
  Alcotest.(check bool) "gone" true (SL.get t c 1L = None);
  Alcotest.(check int) "bytes" 0 (SL.byte_size t)

let prop_sl_vs_model =
  QCheck.Test.make ~name:"skiplist matches model" ~count:100
    QCheck.(list (pair (int_range 1 80) small_nat))
    (fun ops ->
      let d = dev () in
      let t = SL.create d in
      let c = Clock.create () in
      let m = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          SL.put t c (key k) v;
          Hashtbl.replace m (key k) v)
        ops;
      Hashtbl.fold (fun k v acc -> acc && SL.get t c k = Some v) m true
      && SL.count t = Hashtbl.length m)

(* ----------------------------------- CCEH -------------------------------- *)

let test_cceh_basic () =
  let d = dev () in
  let t = Cceh.create ~segment_slots:64 ~probe_limit:8 d in
  let c = Clock.create () in
  Cceh.put t c 1L 10;
  Alcotest.(check bool) "get" true (Cceh.get t c 1L = Some 10);
  Cceh.put t c 1L 11;
  Alcotest.(check bool) "update" true (Cceh.get t c 1L = Some 11);
  Alcotest.(check bool) "absent" true (Cceh.get t c 2L = None);
  Alcotest.(check bool) "delete" true (Cceh.delete t c 1L);
  Alcotest.(check bool) "tombstoned" true
    (Cceh.get t c 1L = Some Types.tombstone)

let test_cceh_splits () =
  let d = dev () in
  let t = Cceh.create ~segment_slots:64 ~probe_limit:4 d in
  let c = Clock.create () in
  for i = 1 to 2_000 do
    Cceh.put t c (key i) i
  done;
  Alcotest.(check bool) "segments split" true (Cceh.splits t > 0);
  Alcotest.(check bool) "directory grew" true (Cceh.global_depth t > 1);
  for i = 1 to 2_000 do
    Alcotest.(check bool) "survives splits" true
      (Cceh.get t c (key i) = Some i)
  done

let test_cceh_small_write_amplification () =
  let d = dev () in
  let t = Cceh.create d in
  let c = Clock.create () in
  let before = (Device.stats d).Pmem_sim.Stats.media_write_bytes in
  for i = 1 to 100 do
    Cceh.put t c (key i) i
  done;
  let delta = (Device.stats d).Pmem_sim.Stats.media_write_bytes -. before in
  (* each 16 B slot write burns >= one 256 B media unit *)
  Alcotest.(check bool) "heavy amplification" true (delta >= 100.0 *. 256.0)

let test_cceh_recover_cheap () =
  let d = dev () in
  let t = Cceh.create d in
  let c = Clock.create () in
  for i = 1 to 500 do
    Cceh.put t c (key i) i
  done;
  let rc = Clock.create () in
  Cceh.recover t rc;
  (* directory rebuild reads one header per segment: microseconds, not a
     log scan *)
  Alcotest.(check bool) "fast recovery" true (Clock.now rc < 1_000_000.0)

let prop_cceh_vs_model =
  QCheck.Test.make ~name:"cceh matches model across splits" ~count:50
    QCheck.(list_of_size Gen.(0 -- 400) (pair (int_range 1 200) small_nat))
    (fun ops ->
      let d = dev () in
      let t = Cceh.create ~segment_slots:64 ~probe_limit:4 d in
      let c = Clock.create () in
      let m = Hashtbl.create 64 in
      List.iter
        (fun (k, v) ->
          Cceh.put t c (key k) v;
          Hashtbl.replace m (key k) v)
        ops;
      Hashtbl.fold (fun k v acc -> acc && Cceh.get t c k = Some v) m true)

(* ----------------------------------- Vlog -------------------------------- *)

let test_vlog_append_read () =
  let t = Vlog.create (dev ()) in
  let c = Clock.create () in
  let l0 = Vlog.append t c 7L ~vlen:100 in
  let l1 = Vlog.append t c 8L ~vlen:8 in
  Alcotest.(check int) "locations sequential" (l0 + 1) l1;
  Alcotest.(check bool) "read" true (Vlog.read t c l0 = Ok (7L, 100));
  Alcotest.(check bool) "verify ok" true (Vlog.verify t c l0 7L);
  Alcotest.(check bool) "verify mismatch" false (Vlog.verify t c l0 9L)

let test_vlog_batching () =
  let t = Vlog.create ~batch_bytes:4096 (dev ()) in
  let c = Clock.create () in
  (* entries of 24 B: the 4 KB batch holds 170 of them *)
  for _ = 1 to 100 do
    ignore (Vlog.append t c 1L ~vlen:8)
  done;
  Alcotest.(check int) "nothing persisted yet" 0 (Vlog.persisted t);
  for _ = 1 to 100 do
    ignore (Vlog.append t c 1L ~vlen:8)
  done;
  Alcotest.(check bool) "first batch persisted" true (Vlog.persisted t >= 170);
  Vlog.flush t c;
  Alcotest.(check int) "flush persists all" 200 (Vlog.persisted t)

let test_vlog_crash_drops_tail () =
  let t = Vlog.create (dev ()) in
  let c = Clock.create () in
  for i = 0 to 99 do
    ignore (Vlog.append t c (key i) ~vlen:8)
  done;
  Vlog.flush t c;
  for i = 100 to 120 do
    ignore (Vlog.append t c (key i) ~vlen:8)
  done;
  Vlog.crash t;
  Alcotest.(check int) "tail dropped" 100 (Vlog.length t);
  Alcotest.(check bool) "persisted data intact" true
    (Int64.equal (Vlog.key_at t 99) (key 99))

let test_vlog_fenced () =
  let t = Vlog.create ~fenced:true (dev ()) in
  let c = Clock.create () in
  ignore (Vlog.append t c 1L ~vlen:8);
  Alcotest.(check int) "immediately durable" 1 (Vlog.persisted t);
  let st = Device.stats (Vlog.device t) in
  Alcotest.(check bool) "media-amplified" true
    (st.Pmem_sim.Stats.media_write_bytes >= 256.0)

let test_vlog_tombstone_entry () =
  let t = Vlog.create (dev ()) in
  let c = Clock.create () in
  let l = Vlog.append t c 5L ~vlen:(-1) in
  Alcotest.(check int) "header-only size" 16 (Vlog.entry_bytes ~vlen:(-1));
  Alcotest.(check int) "vlen preserved" (-1) (Vlog.vlen_at t l)

let test_vlog_iter_range () =
  let t = Vlog.create (dev ()) in
  let c = Clock.create () in
  for i = 0 to 49 do
    ignore (Vlog.append t c (key i) ~vlen:8)
  done;
  Vlog.flush t c;
  let seen = ref [] in
  Vlog.iter_range t c ~lo:10 ~hi:20 (fun loc k vlen ->
      seen := (loc, k, vlen) :: !seen);
  Alcotest.(check int) "10 entries" 10 (List.length !seen);
  (match List.rev !seen with
  | (loc0, k0, v0) :: _ ->
    Alcotest.(check int) "first loc" 10 loc0;
    Alcotest.(check bool) "first key" true (Int64.equal k0 (key 10));
    Alcotest.(check int) "vlen" 8 v0
  | [] -> Alcotest.fail "no entries");
  (* unpersisted entries are not scanned *)
  ignore (Vlog.append t c (key 50) ~vlen:8);
  let n = ref 0 in
  Vlog.iter_range t c ~lo:50 ~hi:60 (fun _ _ _ -> incr n);
  Alcotest.(check int) "unpersisted excluded" 0 !n

let test_vlog_bytes_upto () =
  let t = Vlog.create (dev ()) in
  let c = Clock.create () in
  ignore (Vlog.append t c 1L ~vlen:8);
  ignore (Vlog.append t c 2L ~vlen:100);
  Alcotest.(check int) "zero" 0 (Vlog.bytes_upto t 0);
  Alcotest.(check int) "one" 24 (Vlog.bytes_upto t 1);
  Alcotest.(check int) "two" (24 + 116) (Vlog.bytes_upto t 2)

let test_vlog_oob () =
  let t = Vlog.create (dev ()) in
  let c = Clock.create () in
  Alcotest.(check bool) "read oob raises" true
    (try
       ignore (Vlog.read t c 0);
       false
     with Invalid_argument _ -> true)

let prop_vlog_roundtrip =
  QCheck.Test.make ~name:"vlog roundtrips entries" ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (int_range 0 4096))
    (fun vlens ->
      let t = Vlog.create (dev ()) in
      let c = Clock.create () in
      let locs =
        List.mapi
          (fun i vlen -> (Vlog.append t c (key i) ~vlen, i, vlen))
          vlens
      in
      List.for_all
        (fun (loc, i, vlen) -> Vlog.read t c loc = Ok (key i, vlen))
        locs)


(* ----------------------------------- Merge ------------------------------- *)

let test_merge_newest_wins () =
  let open Kv_common.Merge in
  let merged =
    newest_first [ of_list [ (1L, 10); (2L, 20) ]; of_list [ (1L, 5); (3L, 30) ] ]
  in
  let sorted = List.sort compare merged in
  Alcotest.(check bool) "newest binding per key" true
    (sorted = [ (1L, 10); (2L, 20); (3L, 30) ])

let test_merge_tombstones () =
  let open Kv_common.Merge in
  let sources =
    [ of_list [ (1L, Types.tombstone) ]; of_list [ (1L, 5); (2L, 7) ] ]
  in
  let kept = List.sort compare (newest_first sources) in
  Alcotest.(check bool) "tombstone kept by default" true
    (kept = [ (1L, Types.tombstone); (2L, 7) ]);
  let dropped = List.sort compare (newest_first ~drop_tombstones:true sources) in
  Alcotest.(check bool) "tombstone masks and drops at bottom" true
    (dropped = [ (2L, 7) ])

let test_merge_on_entry_counts () =
  let open Kv_common.Merge in
  let n = ref 0 in
  let _ =
    newest_first
      ~on_entry:(fun () -> incr n)
      [ of_list [ (1L, 1); (2L, 2) ]; of_list [ (1L, 0) ] ]
  in
  Alcotest.(check int) "visited every entry" 3 !n

let prop_merge_matches_model =
  QCheck.Test.make ~name:"merge equals first-binding model" ~count:200
    QCheck.(small_list (small_list (pair (int_range 1 20) small_nat)))
    (fun raw ->
      let sources =
        List.map
          (fun l -> List.map (fun (k, v) -> (key k, v)) l)
          raw
      in
      let merged =
        Kv_common.Merge.newest_first
          (List.map Kv_common.Merge.of_list sources)
      in
      let model = Hashtbl.create 16 in
      List.iter
        (List.iter (fun (k, v) ->
             if not (Hashtbl.mem model k) then Hashtbl.add model k v))
        sources;
      List.length merged = Hashtbl.length model
      && List.for_all (fun (k, v) -> Hashtbl.find model k = v) merged)

let () =
  Alcotest.run "kv_common"
    [ ( "hash",
        [ Alcotest.test_case "mix64 spreads" `Quick test_mix64_spreads;
          Alcotest.test_case "to_int nonneg edge" `Quick test_to_int_nonneg;
          Alcotest.test_case "shard balance" `Quick test_shard_balance;
          QCheck_alcotest.to_alcotest prop_to_int_nonneg;
          QCheck_alcotest.to_alcotest prop_slot_in_range;
          QCheck_alcotest.to_alcotest prop_shard_in_range ] );
      ( "bloom",
        [ Alcotest.test_case "no false negatives" `Quick
            test_bloom_no_false_negative;
          Alcotest.test_case "false-positive rate" `Quick test_bloom_fp_rate;
          Alcotest.test_case "charges time" `Quick test_bloom_charges_time;
          QCheck_alcotest.to_alcotest prop_bloom_never_false_negative ] );
      ( "flat_table",
        [ Alcotest.test_case "put/get/update" `Quick test_flat_put_get;
          Alcotest.test_case "full behaviour" `Quick test_flat_full;
          Alcotest.test_case "clear and iter" `Quick test_flat_clear_iter;
          Alcotest.test_case "tombstone values" `Quick
            test_flat_tombstone_values;
          QCheck_alcotest.to_alcotest prop_flat_vs_model ] );
      ( "linear_table",
        [ Alcotest.test_case "build and get" `Quick test_lt_build_get;
          Alcotest.test_case "later binding wins" `Quick
            test_lt_later_binding_wins;
          Alcotest.test_case "overfull rejected" `Quick
            test_lt_overfull_rejected;
          Alcotest.test_case "iter and silent access" `Quick
            test_lt_iter_and_silent;
          Alcotest.test_case "persisted at build" `Quick
            test_lt_persists_to_device;
          Alcotest.test_case "media accounting" `Quick
            test_lt_media_accounting;
          Alcotest.test_case "tags" `Quick test_lt_tag;
          QCheck_alcotest.to_alcotest prop_lt_vs_model ] );
      ( "sorted-run",
        [ Alcotest.test_case "build_sorted get and iter" `Quick
            test_lt_sorted_build_get;
          Alcotest.test_case "cursor streams the suffix" `Quick
            test_lt_sorted_cursor;
          Alcotest.test_case "cursor reads lazily" `Quick
            test_lt_sorted_cursor_lazy ] );
      ( "scan-algebra",
        [ Alcotest.test_case "merge: newest stream wins ties" `Quick
            test_scan_merge_newest_wins;
          Alcotest.test_case "tombstones mask then drop" `Quick
            test_scan_tombstone_masks_then_drops;
          Alcotest.test_case "error is fail-stop" `Quick
            test_scan_error_fail_stop;
          Alcotest.test_case "of_iter sorts, filters, limits" `Quick
            test_scan_take_and_of_iter ] );
      ( "robinhood",
        [ Alcotest.test_case "basics" `Quick test_rh_basic;
          Alcotest.test_case "grows" `Quick test_rh_grows;
          Alcotest.test_case "rehash latency spike" `Quick
            test_rh_rehash_latency_spike;
          QCheck_alcotest.to_alcotest prop_rh_vs_model ] );
      ( "skiplist",
        [ Alcotest.test_case "sorted iteration" `Quick
            test_sl_sorted_iteration;
          Alcotest.test_case "update in place" `Quick test_sl_update_in_place;
          Alcotest.test_case "pmem traffic" `Quick test_sl_pmem_traffic;
          Alcotest.test_case "clear" `Quick test_sl_clear;
          QCheck_alcotest.to_alcotest prop_sl_vs_model ] );
      ( "cceh",
        [ Alcotest.test_case "basics" `Quick test_cceh_basic;
          Alcotest.test_case "splits preserve data" `Quick test_cceh_splits;
          Alcotest.test_case "small-write amplification" `Quick
            test_cceh_small_write_amplification;
          Alcotest.test_case "cheap recovery" `Quick test_cceh_recover_cheap;
          QCheck_alcotest.to_alcotest prop_cceh_vs_model ] );
      ( "merge",
        [ Alcotest.test_case "newest wins" `Quick test_merge_newest_wins;
          Alcotest.test_case "tombstone handling" `Quick test_merge_tombstones;
          Alcotest.test_case "on_entry counts" `Quick
            test_merge_on_entry_counts;
          QCheck_alcotest.to_alcotest prop_merge_matches_model ] );
      ( "vlog",
        [ Alcotest.test_case "append/read/verify" `Quick
            test_vlog_append_read;
          Alcotest.test_case "batching" `Quick test_vlog_batching;
          Alcotest.test_case "crash drops open batch" `Quick
            test_vlog_crash_drops_tail;
          Alcotest.test_case "fenced mode" `Quick test_vlog_fenced;
          Alcotest.test_case "tombstone entries" `Quick
            test_vlog_tombstone_entry;
          Alcotest.test_case "iter_range" `Quick test_vlog_iter_range;
          Alcotest.test_case "bytes_upto" `Quick test_vlog_bytes_upto;
          Alcotest.test_case "out of bounds" `Quick test_vlog_oob;
          QCheck_alcotest.to_alcotest prop_vlog_roundtrip ] ) ]
