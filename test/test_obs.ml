module Trace = Obs.Trace
module Counters = Obs.Counters
module Attribution = Obs.Attribution
module Export = Obs.Export
module Clock = Pmem_sim.Clock

let reset_obs () =
  Trace.disable ();
  Trace.clear ();
  Attribution.disable ();
  Attribution.reset ();
  Counters.reset_all ()

(* --------------------------------- Trace -------------------------------- *)

let test_span_nesting () =
  reset_obs ();
  Trace.enable ~capacity:64 ();
  let c = Clock.create () in
  Trace.begin_span c ~cat:"t" "outer";
  Clock.advance c 10.0;
  Trace.begin_span c ~cat:"t" "inner";
  Clock.advance c 5.0;
  Trace.end_span c ~cat:"t" "inner";
  Clock.advance c 1.0;
  Trace.end_span c ~cat:"t" "outer";
  let evs = Trace.events () in
  Alcotest.(check int) "4 events" 4 (List.length evs);
  let phases = List.map (fun e -> e.Trace.ph) evs in
  Alcotest.(check bool) "B B E E" true
    (phases = [ Trace.B; Trace.B; Trace.E; Trace.E ]);
  let names = List.map (fun e -> e.Trace.name) evs in
  Alcotest.(check bool) "names" true
    (names = [ "outer"; "inner"; "inner"; "outer" ]);
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Trace.ts <= b.Trace.ts && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps non-decreasing" true (monotone evs);
  Trace.disable ()

let test_with_span_on_exception () =
  reset_obs ();
  Trace.enable ~capacity:16 ();
  let c = Clock.create () in
  (try
     Trace.with_span c ~cat:"t" "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  let phases = List.map (fun e -> e.Trace.ph) (Trace.events ()) in
  Alcotest.(check bool) "end emitted on exception" true
    (phases = [ Trace.B; Trace.E ]);
  Trace.disable ()

let test_ring_bounding () =
  reset_obs ();
  Trace.enable ~capacity:8 ();
  let c = Clock.create () in
  for i = 1 to 20 do
    Clock.advance c 1.0;
    Trace.instant c ~cat:"t" (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "bounded" 8 (Trace.length ());
  Alcotest.(check int) "dropped" 12 (Trace.dropped ());
  let names = List.map (fun e -> e.Trace.name) (Trace.events ()) in
  Alcotest.(check bool) "newest window survives" true
    (names = [ "e13"; "e14"; "e15"; "e16"; "e17"; "e18"; "e19"; "e20" ]);
  Trace.disable ()

let test_disabled_records_nothing () =
  reset_obs ();
  let c = Clock.create () in
  Trace.begin_span c ~cat:"t" "x";
  Trace.end_span c ~cat:"t" "x";
  Alcotest.(check int) "nothing recorded" 0 (Trace.length ())

(* -------------------------------- Counters ------------------------------ *)

let test_counters_basics () =
  reset_obs ();
  let a = Counters.counter "test.a" in
  let b = Counters.counter "test.b" in
  Counters.incr a;
  Counters.incr a;
  Counters.add b 2.5;
  Alcotest.(check (float 1e-9)) "a" 2.0 (Counters.value a);
  Alcotest.(check (float 1e-9)) "b" 2.5 (Counters.value b);
  Alcotest.(check bool) "same store" true (Counters.counter "test.a" == a);
  Alcotest.(check bool) "find" true (Counters.find "test.a" = Some 2.0)

let test_counters_reset_between_runs () =
  reset_obs ();
  let a = Counters.counter "test.reset" in
  Counters.add_int a 7;
  Alcotest.(check (float 1e-9)) "set" 7.0 (Counters.value a);
  Counters.reset_all ();
  Alcotest.(check (float 1e-9)) "zeroed" 0.0 (Counters.value a);
  (* every registered counter is zero after reset *)
  Alcotest.(check bool) "all zero" true
    (List.for_all (fun (_, v) -> v = 0.0) (Counters.snapshot ()))

(* ------------------------------ Attribution ----------------------------- *)

let test_attribution_accumulates () =
  reset_obs ();
  Attribution.enable ();
  Attribution.add Attribution.Get_memtable 5.0;
  Attribution.add Attribution.Get_memtable 7.0;
  Attribution.add Attribution.Put_batch_copy 3.0;
  let snap = Attribution.snapshot () in
  Alcotest.(check (float 1e-9)) "get stage" 12.0
    (Attribution.stage_ns snap Attribution.Get_memtable);
  Alcotest.(check (float 1e-9)) "get total" 12.0
    (Attribution.total ~op:`Get snap);
  Alcotest.(check (float 1e-9)) "put total" 3.0
    (Attribution.total ~op:`Put snap);
  let before = snap in
  Attribution.add Attribution.Get_abi 4.0;
  let d = Attribution.diff ~after:(Attribution.snapshot ()) ~before in
  Alcotest.(check (float 1e-9)) "diff isolates the delta" 4.0
    (Attribution.total ~op:`Get d);
  Attribution.disable ();
  Attribution.reset ()

(* --------------------------------- Export ------------------------------- *)

let check_balanced evs =
  (* per-tid stack discipline: E never underflows, all spans closed *)
  let depth = Hashtbl.create 8 in
  let ok = ref true in
  List.iter
    (fun e ->
      let d =
        match Hashtbl.find_opt depth e.Trace.tid with
        | Some d -> d
        | None -> 0
      in
      match e.Trace.ph with
      | Trace.B -> Hashtbl.replace depth e.Trace.tid (d + 1)
      | Trace.E ->
        if d = 0 then ok := false
        else Hashtbl.replace depth e.Trace.tid (d - 1)
      | Trace.I | Trace.C -> ())
    evs;
  Hashtbl.iter (fun _ d -> if d <> 0 then ok := false) depth;
  !ok

let test_export_balances_orphans () =
  reset_obs ();
  (* a tiny ring: the B of the first span gets overwritten, and one span is
     still open at export time *)
  Trace.enable ~capacity:4 ();
  let c = Clock.create () in
  Trace.begin_span c ~cat:"t" "lost";
  Clock.advance c 1.0;
  Trace.begin_span c ~cat:"t" "kept";
  Clock.advance c 1.0;
  Trace.instant c ~cat:"t" "i1";
  Trace.instant c ~cat:"t" "i2";
  Clock.advance c 1.0;
  Trace.end_span c ~cat:"t" "kept";
  Trace.end_span c ~cat:"t" "lost" (* its B was overwritten *);
  Trace.begin_span c ~cat:"t" "open" (* never closed *);
  Alcotest.(check bool) "raw stream is unbalanced" false
    (check_balanced (Trace.events ()));
  Alcotest.(check bool) "balanced after repair" true
    (check_balanced (Export.balanced_events (Trace.events ())));
  Trace.disable ()

(* Minimal JSON well-formedness: balanced braces/brackets outside string
   literals, and proper string termination. *)
let json_well_formed s =
  let depth = ref 0 and ok = ref true and in_str = ref false in
  let esc = ref false in
  String.iter
    (fun ch ->
      if !in_str then begin
        if !esc then esc := false
        else if ch = '\\' then esc := true
        else if ch = '"' then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let count_substring s sub =
  let n = String.length s and m = String.length sub in
  let count = ref 0 in
  for i = 0 to n - m do
    if String.sub s i m = sub then incr count
  done;
  !count

let test_export_json_from_real_run () =
  reset_obs ();
  Trace.enable ~capacity:4096 ();
  Attribution.enable ();
  let cfg =
    { Chameleondb.Config.default with
      Chameleondb.Config.shards = 2;
      memtable_slots = 32 }
  in
  let db = Chameleondb.Store.create ~cfg () in
  let c = Clock.create () in
  for i = 0 to 2_000 do
    Chameleondb.Store.write db c (Workload.Keyspace.key_of_index i)
      (Kv_common.Store_intf.Sized 8)
  done;
  for i = 0 to 500 do
    ignore (Chameleondb.Store.read db c (Workload.Keyspace.key_of_index i))
  done;
  let json = Export.to_chrome_json (Trace.events ()) in
  Alcotest.(check bool) "has event payload" true (Trace.length () > 0);
  Alcotest.(check bool) "well-formed JSON" true (json_well_formed json);
  Alcotest.(check bool) "catapult envelope" true
    (String.length json > 16 && String.sub json 0 16 = "{\"traceEvents\":[");
  Alcotest.(check int) "balanced B/E events"
    (count_substring json "\"ph\":\"B\"")
    (count_substring json "\"ph\":\"E\"");
  (* per-tid monotone timestamps in the exported (sorted, balanced) order *)
  let evs = Export.balanced_events (Trace.events ()) in
  Alcotest.(check bool) "balanced" true (check_balanced evs);
  let last = Hashtbl.create 8 in
  let monotone = ref true in
  List.iter
    (fun e ->
      (match Hashtbl.find_opt last e.Trace.tid with
      | Some t when e.Trace.ts < t -> monotone := false
      | _ -> ());
      Hashtbl.replace last e.Trace.tid e.Trace.ts)
    (Trace.events ());
  Alcotest.(check bool) "per-tid monotone timestamps" true !monotone;
  reset_obs ()

(* --------------------- Attribution vs. measured latency ------------------ *)

(* The acceptance bar for the attribution table: per-op stage sums must
   reconcile with the measured end-to-end mean latency (within 1%).  Run
   both without and with the DRAM read cache: the cache stage's probe and
   fill time must fold into the same budget, not leak outside it. *)
let reconciles_with_latency ~cache_bytes () =
  reset_obs ();
  Attribution.enable ();
  let scale = Harness.Stores.quick in
  let spec = Harness.Stores.find ~cache_bytes scale "ChameleonDB" in
  let store = spec.Harness.Stores.make () in
  let load =
    Harness.Stores.load_unique ~store ~threads:4 ~start_at:0.0 ~n:20_000
      ~vlen:8
  in
  let gen =
    (* A's get/put mix, salted with scans so the scan stage reconciles too *)
    Workload.Ycsb.create ~mix:Workload.Ycsb.A ~loaded:20_000 ()
  in
  let scan_rng = Workload.Rng.create ~seed:97 in
  let nops = ref 0 in
  let next () =
    incr nops;
    if !nops mod 20 = 0 then
      Kv_common.Types.Scan
        ( Workload.Keyspace.key_of_index (Workload.Rng.int scan_rng 20_000),
          1 + Workload.Rng.int scan_rng 50 )
    else Workload.Ycsb.next gen
  in
  let r =
    Harness.Runner.run_ops ~store ~threads:4
      ~start_at:(Harness.Stores.settled_cursor ~store load)
      ~ops:10_000 ~next ()
  in
  let check_op op hist =
    let n = Metrics.Histogram.count hist in
    Alcotest.(check bool) "ops recorded" true (n > 0);
    let mean = Metrics.Histogram.mean hist in
    let staged =
      Attribution.total ~op r.Harness.Runner.attribution /. float_of_int n
    in
    Alcotest.(check bool)
      (Printf.sprintf "stage sum %.1f within 1%% of mean %.1f" staged mean)
      true
      (Float.abs (staged -. mean) <= 0.01 *. mean)
  in
  check_op `Get r.Harness.Runner.get_latency;
  check_op `Put r.Harness.Runner.put_latency;
  check_op `Scan r.Harness.Runner.scan_latency;
  let cache_ns =
    Attribution.stage_ns r.Harness.Runner.attribution Attribution.Get_cache
  in
  if cache_bytes > 0 then
    Alcotest.(check bool) "cache stage accumulated time" true (cache_ns > 0.0)
  else
    Alcotest.(check (float 0.0)) "no cache, no cache time" 0.0 cache_ns;
  (* the table renders without blowing up and names every get/put stage
     (svc-* and rpc-* stages belong to the serving and cluster layers,
     which have their own runs) *)
  let table = Harness.Runner.attribution_table ~name:"ChameleonDB" r in
  List.iter
    (fun stage ->
      if not (List.mem (Attribution.op_of stage) [ `Svc; `Rpc ]) then
        Alcotest.(check bool)
          (Attribution.name stage ^ " in table")
          true
          (count_substring table (Attribution.name stage) >= 1))
    Attribution.all;
  reset_obs ()

let test_attribution_reconciles_with_latency () =
  reconciles_with_latency ~cache_bytes:0 ()

let test_attribution_reconciles_with_cache () =
  reconciles_with_latency ~cache_bytes:(16 * 1024 * 1024) ()

let () =
  Alcotest.run "obs"
    [ ( "trace",
        [ Alcotest.test_case "span nesting and ordering" `Quick
            test_span_nesting;
          Alcotest.test_case "with_span closes on exception" `Quick
            test_with_span_on_exception;
          Alcotest.test_case "ring buffer bounding" `Quick test_ring_bounding;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_records_nothing ] );
      ( "counters",
        [ Alcotest.test_case "basics" `Quick test_counters_basics;
          Alcotest.test_case "reset between runs" `Quick
            test_counters_reset_between_runs ] );
      ( "attribution",
        [ Alcotest.test_case "accumulate / snapshot / diff" `Quick
            test_attribution_accumulates;
          Alcotest.test_case "reconciles with measured latency" `Quick
            test_attribution_reconciles_with_latency;
          Alcotest.test_case "reconciles with read cache enabled" `Quick
            test_attribution_reconciles_with_cache ] );
      ( "export",
        [ Alcotest.test_case "balances orphan spans" `Quick
            test_export_balances_orphans;
          Alcotest.test_case "valid Chrome JSON from a real run" `Quick
            test_export_json_from_real_run ] ) ]
