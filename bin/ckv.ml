(* ckv — command-line driver for the ChameleonDB reproduction.

   ckv load  --store ChameleonDB --keys 200000 --threads 8
   ckv ycsb  --mix B --ops 50000 --store all
   ckv bench fig10 tab4 --quick
   ckv list *)

open Cmdliner
module Store_intf = Kv_common.Store_intf
module Table = Metrics.Table_fmt
module Proto = Service.Proto

let scale_of_quick quick =
  if quick then Harness.Stores.quick else Harness.Stores.default

let store_names scale =
  List.map (fun s -> s.Harness.Stores.name) (Harness.Stores.all scale)

let resolve_stores ?cache_bytes scale name =
  if name = "all" then Harness.Stores.all ?cache_bytes scale
  else [ Harness.Stores.find ?cache_bytes scale name ]

(* ------------------------------- load command ---------------------------- *)

let run_load store keys threads quick =
  let scale = scale_of_quick quick in
  let tbl =
    Table.create
      ~title:(Printf.sprintf "load %d unique keys, %d threads" keys threads)
      ~columns:
        [ ("store", Table.Left); ("Mops/s", Table.Right);
          ("put p50", Table.Right); ("put p99.9", Table.Right);
          ("WA", Table.Right); ("DRAM", Table.Right) ]
  in
  List.iter
    (fun spec ->
      let handle = spec.Harness.Stores.make () in
      let before =
        Pmem_sim.Stats.copy (Pmem_sim.Device.stats (Store_intf.device handle))
      in
      let r =
        Harness.Stores.load_unique ~store:handle ~threads ~start_at:0.0 ~n:keys
          ~vlen:8
      in
      let delta =
        Pmem_sim.Stats.diff
          ~after:(Pmem_sim.Device.stats (Store_intf.device handle))
          ~before
      in
      Table.add_row tbl
        [ spec.Harness.Stores.name;
          Table.cell_f (Harness.Stores.sustained_mops ~store:handle r);
          Table.cell_ns
            (Metrics.Histogram.percentile r.Harness.Runner.put_latency 50.0);
          Table.cell_ns
            (Metrics.Histogram.percentile r.Harness.Runner.put_latency 99.9);
          Table.cell_f
            (delta.Pmem_sim.Stats.media_write_bytes
            /. float_of_int (keys * 24));
          Table.cell_bytes (Store_intf.dram_footprint handle) ])
    (resolve_stores scale store);
  Table.print tbl

(* Benchmark JSON is hand-rolled (flat structure, numeric leaves) so the
   CI artifacts need no extra dependency. *)
let json_write path body =
  try
    let oc = open_out path in
    output_string oc body;
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" path
  with Sys_error msg -> Printf.eprintf "ckv: cannot write JSON: %s\n" msg

(* ------------------------------- ycsb command ---------------------------- *)

let run_ycsb store mix ops threads seed trace_file cache_mb quick bench_json =
  let scale = scale_of_quick quick in
  let wall_t0 = Unix.gettimeofday () in
  let cache_bytes = cache_mb * 1024 * 1024 in
  let mix =
    match String.uppercase_ascii mix with
    | "LOAD" -> Workload.Ycsb.Load
    | "A" -> Workload.Ycsb.A
    | "B" -> Workload.Ycsb.B
    | "C" -> Workload.Ycsb.C
    | "D" -> Workload.Ycsb.D
    | "E" -> Workload.Ycsb.E
    | "F" -> Workload.Ycsb.F
    | s -> failwith ("unknown YCSB mix: " ^ s)
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "%s: %d requests, %d threads over %d keys"
           (Workload.Ycsb.name mix) ops threads scale.Harness.Stores.load_keys)
      ~columns:
        [ ("store", Table.Left); ("Mops/s", Table.Right);
          ("p50", Table.Right); ("p99", Table.Right) ]
  in
  let specs = resolve_stores ~cache_bytes scale store in
  (* with several stores, each gets its own trace file: NAME-<file> *)
  let trace_path spec =
    match trace_file with
    | None -> None
    | Some path when List.length specs = 1 -> Some path
    | Some path ->
      Some
        (Filename.concat
           (Filename.dirname path)
           (spec.Harness.Stores.name ^ "-" ^ Filename.basename path))
  in
  Obs.Attribution.enable ();
  let results =
    List.map
      (fun spec ->
        (* fresh counters and attribution per store *)
        Obs.Counters.reset_all ();
        Obs.Attribution.reset ();
        let tracing = trace_path spec <> None in
        if tracing && mix = Workload.Ycsb.Load then Obs.Trace.enable ();
        let handle = spec.Harness.Stores.make () in
        let load =
          Harness.Stores.load_unique ~store:handle ~threads ~start_at:0.0
            ~n:scale.Harness.Stores.load_keys ~vlen:8
        in
        let r =
          match mix with
          | Workload.Ycsb.Load -> load
          | _ ->
            if tracing then Obs.Trace.enable ();
            let gen =
              Workload.Ycsb.create ?seed ~mix
                ~loaded:scale.Harness.Stores.load_keys ()
            in
            Harness.Runner.run_ops ~store:handle ~threads
              ~start_at:(Harness.Stores.settled_cursor ~store:handle load)
              ~ops
              ~next:(fun () -> Workload.Ycsb.next gen)
              ()
        in
        (match trace_path spec with
        | Some path ->
          (try
             Obs.Export.write_chrome_trace path;
             Printf.printf "wrote %d trace events to %s (%d dropped)\n"
               (Obs.Trace.length ()) path (Obs.Trace.dropped ())
           with Sys_error msg ->
             Printf.eprintf "ckv: cannot write trace: %s\n" msg);
          Obs.Trace.disable ()
        | None -> ());
        Table.add_row tbl
          [ spec.Harness.Stores.name;
            Table.cell_f (Harness.Runner.throughput_mops r);
            Table.cell_ns
              (Metrics.Histogram.percentile r.Harness.Runner.latency 50.0);
            Table.cell_ns
              (Metrics.Histogram.percentile r.Harness.Runner.latency 99.0) ];
        (spec.Harness.Stores.name, r))
      specs
  in
  Table.print tbl;
  List.iter
    (fun (name, r) ->
      print_string (Harness.Runner.attribution_table ~name r);
      print_newline ())
    results;
  match bench_json with
  | None -> ()
  | Some path ->
    let wall_s = Unix.gettimeofday () -. wall_t0 in
    let b = Buffer.create 512 in
    Buffer.add_string b
      (Printf.sprintf
         "{\n  \"suite\": \"ycsb\", \"mix\": \"%s\", \"quick\": %b, \
          \"ops\": %d, \"threads\": %d, \"wall_s\": %.2f,\n  \"results\": \
          [\n"
         (Workload.Ycsb.name mix) quick ops threads wall_s);
    List.iteri
      (fun i (name, r) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"store\": \"%s\", \"ops\": %d, \"sim_ns\": %.0f, \
              \"mops\": %.4f, \"p50_ns\": %.0f, \"p99_ns\": %.0f}%s\n"
             name r.Harness.Runner.ops
             (Harness.Runner.sim_ns r)
             (Harness.Runner.throughput_mops r)
             (Metrics.Histogram.percentile r.Harness.Runner.latency 50.0)
             (Metrics.Histogram.percentile r.Harness.Runner.latency 99.0)
             (if i = List.length results - 1 then "" else ",")))
      results;
    Buffer.add_string b "  ]\n}";
    json_write path (Buffer.contents b)

(* ----------------------------- inspect command --------------------------- *)

let run_inspect keys quick =
  let scale = scale_of_quick quick in
  let cfg = Harness.Stores.chameleon_cfg scale in
  let db = Chameleondb.Store.create ~cfg () in
  let clock = Pmem_sim.Clock.create () in
  for i = 0 to keys - 1 do
    Chameleondb.Store.write db clock
      (Workload.Keyspace.key_of_index i)
      (Kv_common.Store_intf.Sized 8)
  done;
  Printf.printf "Loaded %d keys in %.2f simulated ms.\n\n" keys
    (Pmem_sim.Clock.now clock /. 1e6);
  print_string (Chameleondb.Report.to_string db)

(* ------------------------------ trace command ---------------------------- *)

let parse_mix s =
  match String.uppercase_ascii s with
  | "LOAD" -> Workload.Ycsb.Load
  | "A" -> Workload.Ycsb.A
  | "B" -> Workload.Ycsb.B
  | "C" -> Workload.Ycsb.C
  | "D" -> Workload.Ycsb.D
  | "F" -> Workload.Ycsb.F
  | other -> failwith ("unknown YCSB mix: " ^ other)

let run_trace record replay mix ops store quick =
  let scale = scale_of_quick quick in
  match (record, replay) with
  | Some path, None ->
    let gen =
      Workload.Ycsb.create ~mix:(parse_mix mix)
        ~loaded:scale.Harness.Stores.load_keys ()
    in
    let t =
      Workload.Trace.record ~n:ops ~gen:(fun () -> Workload.Ycsb.next gen)
    in
    Workload.Trace.save t path;
    Printf.printf "recorded %d %s operations to %s\n" ops mix path
  | None, Some path ->
    let t = Workload.Trace.load path in
    List.iter
      (fun spec ->
        let handle = spec.Harness.Stores.make () in
        let load =
          Harness.Stores.load_unique ~store:handle ~threads:8 ~start_at:0.0
            ~n:scale.Harness.Stores.load_keys ~vlen:8
        in
        let next = Workload.Trace.replayer t in
        let gen ~thread:_ ~now:_ = next () in
        let r =
          Harness.Runner.run ~store:handle ~threads:8
            ~start_at:(Harness.Stores.settled_cursor ~store:handle load)
            ~gen ()
        in
        Printf.printf "%-16s replayed %d ops: %.2f Mops/s, p99 %s\n"
          spec.Harness.Stores.name r.Harness.Runner.ops
          (Harness.Runner.throughput_mops r)
          (Table.cell_ns
             (Metrics.Histogram.percentile r.Harness.Runner.latency 99.0)))
      (resolve_stores scale store)
  | Some _, Some _ | None, None ->
    prerr_endline "trace: pass exactly one of --record FILE or --replay FILE";
    exit 1

(* ------------------------------ crash command ---------------------------- *)

let run_crash store seeds seed ops universe per_site no_tear site at
    recovery_at export cache_mb quick =
  let scale = scale_of_quick quick in
  let specs = resolve_stores ~cache_bytes:(cache_mb * 1024 * 1024) scale store in
  let tear = not no_tear in
  let seed_list =
    match seed with Some s -> [ s ] | None -> List.init seeds (fun i -> i + 1)
  in
  let violations = ref 0 in
  (match site with
  | Some site_name ->
    (* pinpoint mode: one exact case per store x seed, for reproducing a
       sweep failure from its printed hint *)
    let site =
      match Kv_common.Fault_point.of_string site_name with
      | Some s -> s
      | None -> failwith ("unknown crash site: " ^ site_name)
    in
    List.iter
      (fun spec ->
        List.iter
          (fun sd ->
            let case =
              { Fault.Sweep.c_store = spec.Harness.Stores.name;
                c_seed = sd; c_site = site; c_after = at;
                c_recovery_after = recovery_at }
            in
            let o =
              Fault.Sweep.run_case_of ~make:spec.Harness.Stores.make ~ops
                ~universe ~tear case
            in
            Printf.printf "%-16s seed=%d site=%s at=%d: crashed=%b%s %s\n"
              o.Fault.Checker.store_name sd site_name at
              o.Fault.Checker.crashed
              (if o.Fault.Checker.recovery_crashed then " recovery-crashed"
               else "")
              (if o.Fault.Checker.violations = [] then "ok" else "VIOLATIONS");
            List.iter
              (fun v ->
                incr violations;
                Printf.printf "    %s\n" v)
              o.Fault.Checker.violations)
          seed_list)
      specs
  | None ->
    let tbl =
      Table.create
        ~title:
          (Printf.sprintf
             "crash sweep: %d seed(s), first/middle/last event per site%s"
             (List.length seed_list)
             (if tear then ", torn 256B writes" else ""))
        ~columns:
          [ ("store", Table.Left); ("cases", Table.Right);
            ("crashes fired", Table.Right); ("recovery crashes", Table.Right);
            ("violations", Table.Right); ("verdict", Table.Left) ]
    in
    List.iter
      (fun spec ->
        let v =
          Fault.Sweep.run_store ~name:spec.Harness.Stores.name
            ~make:spec.Harness.Stores.make ~seeds:seed_list ~per_site ~ops
            ~universe ~tear ()
        in
        let nviol =
          List.fold_left
            (fun a f -> a + List.length f.Fault.Sweep.f_violations)
            0 v.Fault.Sweep.v_failures
        in
        violations := !violations + nviol;
        Table.add_row tbl
          [ v.Fault.Sweep.v_store;
            string_of_int v.Fault.Sweep.v_cases;
            string_of_int v.Fault.Sweep.v_fired;
            string_of_int v.Fault.Sweep.v_recovery_crashes;
            string_of_int nviol;
            (if Fault.Sweep.passed v then "ok" else "FAIL") ];
        List.iter
          (fun f ->
            Printf.printf "repro: %s\n" (Fault.Sweep.repro_hint f.Fault.Sweep.f_case);
            List.iter
              (fun d -> Printf.printf "    %s\n" d)
              f.Fault.Sweep.f_violations)
          v.Fault.Sweep.v_failures;
        match export with
        | Some dir when v.Fault.Sweep.v_failures <> [] ->
          (try
             List.iter
               (fun p -> Printf.printf "trace: wrote %s\n" p)
               (Fault.Sweep.export_failures ~make:spec.Harness.Stores.make
                  ~ops ~universe ~tear ~dir v)
           with Sys_error msg ->
             Printf.eprintf "ckv: cannot export traces: %s\n" msg)
        | Some _ | None -> ())
      specs;
    Table.print tbl);
  if !violations > 0 then exit 1

(* ------------------------------ scrub command ---------------------------- *)

let run_scrub store keys faults budget seed quick =
  let scale = scale_of_quick quick in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "scrub: %d keys, %d injected media faults, %s budget per pass"
           keys faults
           (Table.cell_bytes (float_of_int budget)))
      ~columns:
        [ ("store", Table.Left); ("injected", Table.Right);
          ("passes", Table.Right); ("detected", Table.Right);
          ("repaired", Table.Right); ("quarantined", Table.Right);
          ("scanned", Table.Right); ("verdict", Table.Left) ]
  in
  let failures = ref 0 in
  List.iter
    (fun spec ->
      let handle = spec.Harness.Stores.make () in
      let load =
        Harness.Stores.load_unique ~store:handle ~threads:1 ~start_at:0.0
          ~n:keys ~vlen:24
      in
      let clock =
        Pmem_sim.Clock.create
          ~at:(Harness.Stores.settled_cursor ~store:handle load)
          ()
      in
      let vlog = Store_intf.vlog handle in
      let dev = Store_intf.device handle in
      let rng = Workload.Rng.create ~seed in
      (* corrupt the newest record of [faults] distinct live keys,
         alternating poisoned 256B units with single-entry bit rot *)
      let victims = Hashtbl.create faults in
      let guard = ref 0 in
      while Hashtbl.length victims < faults && !guard < 100 * faults do
        incr guard;
        let key = Workload.Keyspace.key_of_index (Workload.Rng.int rng keys) in
        if not (Hashtbl.mem victims key) then
          match (Store_intf.read handle clock key).Store_intf.loc with
          | Some loc when loc < Kv_common.Vlog.persisted vlog ->
            if Hashtbl.length victims land 1 = 0 then begin
              let off, len = Kv_common.Vlog.entry_range vlog loc in
              Pmem_sim.Device.inject_poison dev ~off ~len
            end
            else Kv_common.Vlog.corrupt_entry vlog loc;
            Hashtbl.replace victims key ()
          | Some _ | None -> ()
      done;
      let injected = Hashtbl.length victims in
      let scrubs = List.mem Kv_common.Fault_point.Scrub
          (Store_intf.fault_points handle)
      in
      let detected = ref 0 and repaired = ref 0 and quarantined = ref 0 in
      let scanned = ref 0 and passes = ref 0 in
      let continue = ref true in
      while !continue && !passes < 10_000 do
        let r = Store_intf.scrub handle clock ~budget_bytes:budget in
        incr passes;
        detected := !detected + r.Store_intf.sr_detected;
        repaired := !repaired + r.Store_intf.sr_repaired;
        quarantined := !quarantined + r.Store_intf.sr_quarantined;
        scanned := !scanned + r.Store_intf.sr_scanned_bytes;
        if !detected >= injected || r.Store_intf.sr_scanned_bytes = 0 then
          continue := false
      done;
      (* a scrubbing store must detect every injected fault (collateral on
         shared 256B units may push detections past the injected count) and
         must never serve a victim's record as a successful read *)
      let ok = ref (not scrubs || !detected >= injected) in
      Hashtbl.iter
        (fun key () ->
          let r = Store_intf.read handle clock key in
          match (r.Store_intf.loc, r.Store_intf.stage) with
          | Some _, _ -> ok := false (* corrupted record served *)
          | None, Store_intf.Corrupt -> ()
          | None, _ -> if scrubs then ok := false (* silent miss *))
        victims;
      if not !ok then incr failures;
      Table.add_row tbl
        [ spec.Harness.Stores.name;
          string_of_int injected;
          string_of_int !passes;
          string_of_int !detected;
          string_of_int !repaired;
          string_of_int !quarantined;
          Table.cell_bytes (float_of_int !scanned);
          (if !ok then if scrubs then "ok" else "no scrubber"
           else "FAIL") ])
    (resolve_stores scale store);
  Table.print tbl;
  if !failures > 0 then exit 1

(* ------------------------------ media command ---------------------------- *)

let run_media store seeds ops universe faults quick =
  let scale = scale_of_quick quick in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "media-fault sweep: %d seed(s), %d faults per case"
           (List.length seeds) faults)
      ~columns:
        [ ("store", Table.Left); ("injected", Table.Right);
          ("corrupt reads", Table.Right); ("scrub detected", Table.Right);
          ("recovered", Table.Right); ("violations", Table.Right);
          ("verdict", Table.Left) ]
  in
  let violations = ref 0 in
  List.iter
    (fun spec ->
      let v =
        Fault.Media.run_store ~name:spec.Harness.Stores.name
          ~make:spec.Harness.Stores.make ~seeds ~ops ~universe ~faults ()
      in
      violations := !violations + List.length v.Fault.Media.m_violations;
      Table.add_row tbl
        [ v.Fault.Media.m_store;
          string_of_int v.Fault.Media.m_injected;
          string_of_int v.Fault.Media.m_corrupt_reads;
          string_of_int v.Fault.Media.m_scrub_detected;
          string_of_int v.Fault.Media.m_recovered;
          string_of_int (List.length v.Fault.Media.m_violations);
          (if Fault.Media.passed v then "ok" else "FAIL") ];
      List.iter
        (fun d -> Printf.printf "    %s\n" d)
        v.Fault.Media.m_violations)
    (resolve_stores scale store);
  Table.print tbl;
  (* artifact legs: table runs and manifest floors, ChameleonDB only *)
  (match Fault.Media.run_chameleon_artifacts ~ops ~universe () with
  | [] -> print_endline "artifact legs (table runs, manifest floors): ok"
  | vs ->
    violations := !violations + List.length vs;
    print_endline "artifact legs (table runs, manifest floors): FAIL";
    List.iter (fun d -> Printf.printf "    %s\n" d) vs);
  if !violations > 0 then exit 1

(* --------------------------- serve / client ------------------------------ *)

let run_serve store path max_requests cache_mb quick =
  let scale = scale_of_quick quick in
  let clock = Pmem_sim.Clock.create () in
  let cache_bytes = cache_mb * 1024 * 1024 in
  let backend =
    if store = "ChameleonDB" then
      (* the real path materializes values so gets return payloads *)
      let cfg =
        { (Harness.Stores.chameleon_cfg scale) with
          Chameleondb.Config.materialize_values = true;
          cache_bytes }
      in
      Service.Endpoint.backend_of_store ~clock
        (Chameleondb.Store.store (Chameleondb.Store.create ~cfg ()))
    else
      Service.Endpoint.backend_of_store ~clock
        ((Harness.Stores.find ~cache_bytes scale store).Harness.Stores.make ())
  in
  let max_requests = Option.value max_requests ~default:max_int in
  let served =
    Service.Endpoint.serve ~max_requests
      ~on_ready:(fun () ->
        Printf.printf "ckv serve: %s listening on %s\n%!" store path)
      ~path backend
  in
  Printf.printf "ckv serve: done after %d request(s)\n" served

let run_client path script =
  let key s =
    match Int64.of_string_opt s with
    | Some k -> k
    | None -> failwith ("client: bad key " ^ s)
  in
  let c = Service.Endpoint.connect path in
  let show = function
    | Proto.Value v -> Printf.printf "value %s\n" (Bytes.to_string v)
    | r -> Format.printf "%a@." Proto.pp_reply r
  in
  let rec go = function
    | [] -> ()
    | "put" :: k :: v :: rest ->
      show (Service.Endpoint.request c (Proto.Put (key k, Bytes.of_string v)));
      go rest
    | "get" :: k :: rest ->
      show (Service.Endpoint.request c (Proto.Get (key k)));
      go rest
    | "del" :: k :: rest ->
      show (Service.Endpoint.request c (Proto.Delete (key k)));
      go rest
    | op :: _ -> failwith ("client: unknown op " ^ op)
  in
  go script;
  Service.Endpoint.close c

(* ------------------------------ bench command ---------------------------- *)

let run_bench ids quick =
  Harness.Experiments.run_ids ~scale:(scale_of_quick quick) ids

(* -------------------------------- mph command ---------------------------- *)

(* Focused driver for the perfect-hash last level: loads the same key
   population into ChameleonDB (Bloom+probe), ChameleonDB-MPH and
   Pmem-LSM-F, then sweeps uniform hit and miss gets.  The `bench`
   experiment of the same name adds latency attribution; this command
   produces the CI artifact. *)

let run_mph seed quick bench_json =
  let scale = scale_of_quick quick in
  let wall_t0 = Unix.gettimeofday () in
  let module Stores = Harness.Stores in
  let module Runner = Harness.Runner in
  let module Stats = Pmem_sim.Stats in
  let module Config = Chameleondb.Config in
  let universe = scale.Stores.load_keys in
  let threads = 8 in
  let cval name =
    match Obs.Counters.find name with Some v -> v | None -> 0.0
  in
  let specs =
    [ Stores.chameleon ~f:(fun cfg -> { cfg with Config.seed }) scale;
      Stores.chameleon ~name:"ChameleonDB-MPH"
        ~f:(fun cfg ->
          { cfg with Config.seed; Config.index_kind = Config.Mph })
        scale;
      Stores.find scale "Pmem-LSM-F" ]
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "mph: uniform gets over %d keys, %d threads (seed %d)" universe
           threads seed)
      ~columns:
        [ ("store", Table.Left); ("mix", Table.Left);
          ("get Mops/s", Table.Right); ("p50", Table.Right);
          ("p99", Table.Right); ("reads/get", Table.Right);
          ("DRAM B/key", Table.Right) ]
  in
  let results =
    List.map
      (fun spec ->
        let name = spec.Stores.name in
        let handle = spec.Stores.make () in
        let b0 = cval "mph.builds"
        and k0 = cval "mph.build_keys"
        and a0 = cval "mph.build_attempts"
        and r0 = cval "mph.build_restarts" in
        let load =
          Stores.load_unique ~store:handle ~threads ~start_at:0.0 ~n:universe
            ~vlen:scale.Stores.vlen
        in
        let builds = cval "mph.builds" -. b0 in
        let build_keys = cval "mph.build_keys" -. k0 in
        let attempts = cval "mph.build_attempts" -. a0 in
        let restarts = cval "mph.build_restarts" -. r0 in
        let dram_per_key =
          Store_intf.dram_footprint handle /. float_of_int universe
        in
        let cursor = ref (Stores.settled_cursor ~store:handle load) in
        let sweep mix next =
          let r =
            Runner.run_ops ~store:handle ~threads ~start_at:!cursor
              ~ops:scale.Stores.sweep_ops ~next ()
          in
          cursor := Stores.settled_cursor ~store:handle r;
          let ops = float_of_int r.Runner.ops in
          let reads_per_get =
            float_of_int r.Runner.device_delta.Stats.read_ops /. ops
          in
          let p p' = Metrics.Histogram.percentile r.Runner.get_latency p' in
          Table.add_row tbl
            [ name; mix;
              Table.cell_f (Runner.throughput_mops r);
              Table.cell_ns (p 50.0); Table.cell_ns (p 99.0);
              Table.cell_f reads_per_get; Table.cell_f dram_per_key ];
          (Runner.throughput_mops r, p 50.0, p 99.0, reads_per_get)
        in
        let hit = sweep "hit" (Stores.uniform_get_gen ~seed ~universe) in
        let miss_rng = Workload.Rng.create ~seed:(seed + 1) in
        let miss =
          sweep "miss" (fun () ->
              Kv_common.Types.Get
                (Workload.Keyspace.key_of_index
                   (universe + Workload.Rng.int miss_rng universe)))
        in
        (name, dram_per_key, (builds, build_keys, attempts, restarts),
         hit, miss))
      specs
  in
  Table.print tbl;
  List.iter
    (fun (name, _, (builds, build_keys, attempts, restarts), _, _) ->
      if builds > 0.0 then
        Printf.printf
          "%s construction: %.0f MPH builds over %.0f keys, %.2f \
           displacement attempts/key, %.0f seed restarts\n"
          name builds build_keys
          (attempts /. Float.max 1.0 build_keys)
          restarts)
    results;
  let find_res n =
    List.find (fun (name, _, _, _, _) -> name = n) results
  in
  let _, _, (mph_builds, _, _, _), (_, _, mph_p99, mph_reads), _ =
    find_res "ChameleonDB-MPH"
  in
  let _, _, _, (_, _, base_p99, _), _ = find_res "ChameleonDB" in
  let ok = mph_builds > 0.0 && mph_p99 <= base_p99 && mph_reads < 4.0 in
  (match bench_json with
  | None -> ()
  | Some path ->
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"suite\": \"mph\", \"quick\": %b, \"seed\": %d, \"universe\": \
          %d,\n"
         quick seed universe);
    Buffer.add_string b "  \"stores\": [\n";
    List.iteri
      (fun i
           (name, dram, (builds, build_keys, attempts, restarts),
            (h_mops, h_p50, h_p99, h_reads),
            (m_mops, m_p50, m_p99, m_reads)) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"store\": \"%s\", \"dram_bytes_per_key\": %.3f, \
              \"mph_builds\": %.0f, \"mph_build_keys\": %.0f, \
              \"mph_attempts_per_key\": %.3f, \"mph_restarts\": %.0f,\n\
             \     \"hit\": {\"mops\": %.4f, \"p50_ns\": %.0f, \"p99_ns\": \
              %.0f, \"reads_per_get\": %.3f},\n\
             \     \"miss\": {\"mops\": %.4f, \"p50_ns\": %.0f, \
              \"p99_ns\": %.0f, \"reads_per_get\": %.3f}}%s\n"
             name dram builds build_keys
             (attempts /. Float.max 1.0 build_keys)
             restarts h_mops h_p50 h_p99 h_reads m_mops m_p50 m_p99 m_reads
             (if i = List.length results - 1 then "" else ",")))
      results;
    Buffer.add_string b
      (Printf.sprintf "  ],\n  \"wall_s\": %.2f, \"pass\": %b\n}"
         (Unix.gettimeofday () -. wall_t0)
         ok);
    json_write path (Buffer.contents b));
  if not ok then begin
    Printf.eprintf "ckv mph: FAILED acceptance checks\n";
    exit 1
  end

(* ------------------------------ batch command ---------------------------- *)

let run_batch seed quick bench_json =
  let scale = scale_of_quick quick in
  let wall_t0 = Unix.gettimeofday () in
  let module Stores = Harness.Stores in
  let module Server = Service.Server in
  let module Loadgen = Service.Loadgen in
  let workers = 8 in
  let vlen = scale.Stores.vlen in
  let n_keys = scale.Stores.load_keys in
  let payload = Bytes.make vlen 'v' in
  let reqgen ~batch rng =
    let put () =
      Service.Proto.Put
        ( Workload.Keyspace.key_of_index (Workload.Rng.int rng n_keys),
          payload )
    in
    if batch <= 1 then put ()
    else Service.Proto.Batch (List.init batch (fun _ -> put ()))
  in
  let mk () =
    let store = (Stores.find scale "Hybrid-Viper").Stores.make () in
    let load =
      Stores.load_unique ~store ~threads:workers ~start_at:0.0 ~n:n_keys ~vlen
    in
    (store, Stores.settled_cursor ~store load)
  in
  let pstore, pt0 = mk () in
  let conns = workers * 4 in
  let probe =
    Server.run ~store:pstore ~workers ~start_at:pt0
      ~closed:
        (Loadgen.closed_loop ~seed ~conns
           ~reqs_per_conn:(max 64 (scale.Stores.sweep_ops / conns / 4))
           ~reqgen:(reqgen ~batch:1) ())
      ()
  in
  let cap = Server.throughput_mops probe in
  Printf.printf
    "Closed-loop put capacity at batch 1: %.2f Mops/s over %d workers\n" cap
    workers;
  let counter s n =
    match List.assoc_opt n s.Server.counters with Some v -> v | None -> 0.0
  in
  let run_cell ~batch ~linger_ns ~rate =
    let store, t0 = mk () in
    let frame_rate = rate /. float_of_int (max 1 batch) in
    let duration_ns =
      float_of_int scale.Stores.sweep_ops /. rate *. 1000.0
    in
    let arrivals =
      Loadgen.open_loop ~seed:(seed + 30) ~conns:8
        ~process:(Loadgen.Poisson { rate_mops = frame_rate })
        ~reqgen:(reqgen ~batch) ~duration_ns ~start_at:t0 ()
    in
    Server.run ~store ~workers ~start_at:t0 ~linger_ns ~arrivals ()
  in
  (* open-loop at 3x the per-op-fence capacity: each batch size's achieved
     rate is its saturation throughput, p99 measured from intended arrival *)
  let batches = [ 1; 4; 16; 64 ] in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "batch: Hybrid-Viper saturation sweep at 3x batch-1 capacity \
            (seed %d)"
           seed)
      ~columns:
        [ ("batch", Table.Right); ("Mops/s", Table.Right);
          ("put p50", Table.Right); ("put p99", Table.Right);
          ("fences/op", Table.Right) ]
  in
  let cells =
    List.map
      (fun batch ->
        let s = run_cell ~batch ~linger_ns:0.0 ~rate:(3.0 *. cap) in
        let mops = Server.throughput_mops s in
        let p p' = Metrics.Histogram.percentile s.Server.put_service p' in
        let fences =
          counter s "vlog.batch_flushes"
          /. Float.max 1.0 (float_of_int s.Server.ops_executed)
        in
        Table.add_row tbl
          [ string_of_int batch; Table.cell_f mops;
            Table.cell_ns (p 50.0); Table.cell_ns (p 99.0);
            Table.cell_f fences ];
        (batch, mops, p 50.0, p 99.0, fences))
      batches
  in
  Table.print tbl;
  (* server group commit on unbatched clients near capacity *)
  let lift = run_cell ~batch:1 ~linger_ns:2_000.0 ~rate:(0.9 *. cap) in
  let grouped =
    counter lift "service.grouped_writes"
    /. Float.max 1.0 (float_of_int lift.Server.ops_executed)
  in
  Printf.printf
    "Server group commit (batch 1, 2us linger, 0.9x capacity): %.2f \
     Mops/s, %.0f%% of writes grouped, %.2f fences/op\n"
    (Server.throughput_mops lift)
    (100.0 *. grouped)
    (counter lift "vlog.batch_flushes"
    /. Float.max 1.0 (float_of_int lift.Server.ops_executed));
  (* restart-time gap: full-log replay vs persistent levels *)
  let restart name =
    let spec = Stores.find scale name in
    let store = spec.Stores.make () in
    let load =
      Stores.load_unique ~store ~threads:workers ~start_at:0.0 ~n:n_keys ~vlen
    in
    let t0 = Stores.settled_cursor ~store load in
    Store_intf.crash store;
    let c = Pmem_sim.Clock.create ~at:t0 () in
    Store_intf.recover store c;
    Pmem_sim.Clock.now c -. t0
  in
  let cham_rt = restart "ChameleonDB" in
  let viper_rt = restart "Hybrid-Viper" in
  Printf.printf
    "Restart after crash over %d keys: ChameleonDB %.3f ms, Hybrid-Viper \
     %.3f ms (%.0fx)\n"
    n_keys (cham_rt /. 1e6) (viper_rt /. 1e6)
    (viper_rt /. Float.max 1.0 cham_rt);
  let mops_of b =
    match List.find_opt (fun (b', _, _, _, _) -> b' = b) cells with
    | Some (_, m, _, _, _) -> m
    | None -> 0.0
  in
  let m1 = mops_of 1 and m4 = mops_of 4 and m16 = mops_of 16 in
  let m64 = mops_of 64 in
  (* monotone up to the knee, >=1.5x at batch 16, plateau tolerated past it *)
  let ok =
    m4 >= m1 && m16 >= m4 && m16 >= 1.5 *. m1 && m64 >= 0.9 *. m16
    && viper_rt > cham_rt
  in
  (match bench_json with
  | None -> ()
  | Some path ->
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"suite\": \"batch\", \"quick\": %b, \"seed\": %d, \
          \"workers\": %d, \"keys\": %d,\n"
         quick seed workers n_keys);
    Buffer.add_string b
      (Printf.sprintf "  \"capacity_mops\": %.4f,\n" cap);
    Buffer.add_string b "  \"cells\": [\n";
    List.iteri
      (fun i (batch, mops, p50, p99, fences) ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"batch\": %d, \"mops\": %.4f, \"put_p50_ns\": %.0f, \
              \"put_p99_ns\": %.0f, \"fences_per_op\": %.4f}%s\n"
             batch mops p50 p99 fences
             (if i = List.length cells - 1 then "" else ",")))
      cells;
    Buffer.add_string b "  ],\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"linger\": {\"mops\": %.4f, \"grouped_frac\": %.4f},\n"
         (Server.throughput_mops lift)
         grouped);
    Buffer.add_string b
      (Printf.sprintf
         "  \"restart\": {\"chameleondb_ns\": %.0f, \"hybrid_viper_ns\": \
          %.0f},\n"
         cham_rt viper_rt);
    Buffer.add_string b
      (Printf.sprintf "  \"wall_s\": %.2f, \"pass\": %b\n}"
         (Unix.gettimeofday () -. wall_t0)
         ok);
    json_write path (Buffer.contents b));
  if not ok then begin
    Printf.eprintf "ckv batch: FAILED acceptance checks\n";
    exit 1
  end

(* ----------------------------- cluster command --------------------------- *)

let run_cluster quick seed loss bench_json =
  let scale = scale_of_quick quick in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let module CB = Harness.Cluster_bench in
  let counts = [ 1; 2; 4; 8 ] in
  let points, w_scaling = wall (fun () -> CB.scaling ~seed scale counts) in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "cluster: closed-loop Mops/s vs node count (seed %d)" seed)
      ~columns:
        [ ("nodes", Table.Right); ("Mops/s", Table.Right);
          ("get p99", Table.Right); ("put p99", Table.Right) ]
  in
  List.iter
    (fun p ->
      Table.add_row tbl
        [ string_of_int p.CB.sp_nodes; Table.cell_f p.CB.sp_mops;
          Table.cell_ns p.CB.sp_get_p99; Table.cell_ns p.CB.sp_put_p99 ])
    points;
  Table.print tbl;
  if loss > 0.0 then
    Printf.printf
      "Scenarios run under %.3f frame loss (defensive policy, \
       partition-aware audit).\n"
      loss;
  let fo, w_fo = wall (fun () -> CB.failover ~seed ~loss scale) in
  let rb, w_rb = wall (fun () -> CB.rebalance ~seed:(seed + 1) ~loss scale) in
  let summarize sc =
    let r = sc.CB.sc_result in
    let router = sc.CB.sc_setup.CB.router in
    Printf.printf
      "%s: %d ops at %.2f Mops/s offered; %d errs, %d redirects, %d \
       misrouted; divergence %d/%d\n"
      sc.CB.sc_label r.Cluster.Run.r_ops sc.CB.sc_rate_mops
      r.Cluster.Run.r_errs
      (Cluster.Router.redirects router)
      (Cluster.Router.misrouted router)
      (List.length sc.CB.sc_mismatches)
      sc.CB.sc_checked
  in
  summarize fo;
  summarize rb;
  let catchup_done = fo.CB.sc_result.Cluster.Run.r_catchups <> [] in
  let migration_done =
    match rb.CB.sc_result.Cluster.Run.r_migrations with
    | [ m ] -> Cluster.Migration.phase m = Cluster.Migration.Cleaned
    | _ -> false
  in
  let ok =
    fo.CB.sc_mismatches = [] && rb.CB.sc_mismatches = []
    && Cluster.Router.misrouted fo.CB.sc_setup.CB.router = 0
    && Cluster.Router.misrouted rb.CB.sc_setup.CB.router = 0
    && Cluster.Router.redirects rb.CB.sc_setup.CB.router >= 1
    && catchup_done && migration_done
  in
  (match bench_json with
  | None -> ()
  | Some path ->
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"suite\": \"cluster\", \"quick\": %b, \"seed\": %d, \
          \"loss\": %g,\n"
         quick seed loss);
    Buffer.add_string b "  \"scaling\": [\n";
    List.iteri
      (fun i p ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"nodes\": %d, \"replicas\": %d, \"ops\": %d, \
              \"sim_ns\": %.0f, \"mops\": %.4f, \"get_p99_ns\": %.0f, \
              \"put_p99_ns\": %.0f}%s\n"
             p.CB.sp_nodes p.CB.sp_replicas p.CB.sp_ops p.CB.sp_sim_ns
             p.CB.sp_mops p.CB.sp_get_p99 p.CB.sp_put_p99
             (if i = List.length points - 1 then "" else ",")))
      points;
    Buffer.add_string b
      (Printf.sprintf "  ], \"scaling_wall_s\": %.2f,\n" w_scaling);
    let scenario_json name sc wall_s =
      let r = sc.CB.sc_result in
      let router = sc.CB.sc_setup.CB.router in
      Printf.sprintf
        "  \"%s\": {\"ops\": %d, \"reqs\": %d, \"errs\": %d, \
         \"offered_mops\": %.4f, \"capacity_mops\": %.4f, \"sim_ns\": \
         %.0f, \"wall_s\": %.2f, \"get_p99_ns\": %.0f, \"put_p99_ns\": \
         %.0f, \"redirects\": %d, \"misrouted\": %d, \"quorum_failures\": \
         %d, \"checked\": %d, \"mismatches\": %d}"
        name r.Cluster.Run.r_ops r.Cluster.Run.r_reqs r.Cluster.Run.r_errs
        sc.CB.sc_rate_mops sc.CB.sc_probe_mops
        (r.Cluster.Run.r_end_ns -. sc.CB.sc_start)
        wall_s
        (Metrics.Histogram.percentile r.Cluster.Run.r_get_h 99.0)
        (Metrics.Histogram.percentile r.Cluster.Run.r_put_h 99.0)
        (Cluster.Router.redirects router)
        (Cluster.Router.misrouted router)
        (Cluster.Router.quorum_failures router)
        sc.CB.sc_checked
        (List.length sc.CB.sc_mismatches)
    in
    Buffer.add_string b (scenario_json "failover" fo w_fo);
    Buffer.add_string b ",\n";
    Buffer.add_string b (scenario_json "rebalance" rb w_rb);
    Buffer.add_string b (Printf.sprintf ",\n  \"pass\": %b\n}" ok);
    json_write path (Buffer.contents b));
  if not ok then begin
    Printf.eprintf "ckv cluster: FAILED acceptance checks\n";
    exit 1
  end

(* ----------------------------- chaos command ----------------------------- *)

let run_chaos quick seed bench_json =
  let scale = scale_of_quick quick in
  let module CB = Harness.Cluster_bench in
  let wall_t0 = Unix.gettimeofday () in
  let cells = CB.chaos_sweep ~seed scale in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "chaos: loss x partition x hedge (5 nodes, wq 2, seed %d)" seed)
      ~columns:
        [ ("loss", Table.Right); ("part", Table.Left); ("hedge", Table.Left);
          ("avail", Table.Right); ("goodput", Table.Right);
          ("get p99", Table.Right); ("event p99", Table.Right);
          ("retries", Table.Right); ("hedges", Table.Right);
          ("dedup", Table.Right); ("residue", Table.Right);
          ("audit", Table.Left) ]
  in
  List.iter
    (fun c ->
      Table.add_row tbl
        [ Printf.sprintf "%.3f" c.CB.cc_loss;
          CB.partition_name c.CB.cc_partition;
          (if c.CB.cc_hedge then "on" else "off");
          Printf.sprintf "%.4f" c.CB.cc_availability;
          Table.cell_f c.CB.cc_goodput_mops;
          Table.cell_ns c.CB.cc_get_p99;
          Table.cell_ns c.CB.cc_event_get_p99;
          string_of_int c.CB.cc_retries; string_of_int c.CB.cc_hedges;
          string_of_int c.CB.cc_dedup_hits; string_of_int c.CB.cc_residue;
          (if CB.cell_clean c then "clean" else "DIRTY") ])
    cells;
  Table.print tbl;
  List.iter
    (fun c ->
      List.iter
        (fun m ->
          Printf.printf "  LOST [%s]: key %Ld node %d: expected %s, got %s\n"
            c.CB.cc_label m.Cluster.Run.mm_key m.Cluster.Run.mm_node
            m.Cluster.Run.mm_expected m.Cluster.Run.mm_got)
        c.CB.cc_mismatches;
      List.iter
        (fun v -> Printf.printf "  VIOLATION [%s]: %s\n" c.CB.cc_label v)
        c.CB.cc_violations)
    cells;
  let slow_off, slow_on = CB.fail_slow_pair ~seed ~factor:10.0 scale in
  let slow_ratio =
    if slow_on.CB.cc_event_get_p99 > 0.0 then
      slow_off.CB.cc_event_get_p99 /. slow_on.CB.cc_event_get_p99
    else infinity
  in
  Printf.printf
    "fail-slow 10x: event get p99 %.0f ns no-hedge vs %.0f ns hedged \
     (%.2fx; %d hedges, %d wins, %d suspicions)\n"
    slow_off.CB.cc_event_get_p99 slow_on.CB.cc_event_get_p99 slow_ratio
    slow_on.CB.cc_hedges slow_on.CB.cc_hedge_wins slow_on.CB.cc_suspicions;
  let base_mops, def_mops = CB.overhead_pair ~seed:(seed + 6) scale in
  let overhead = 1.0 -. (def_mops /. Float.max base_mops 1e-9) in
  Printf.printf
    "zero-fault overhead: %.2f Mops/s default vs %.2f Mops/s defensive \
     (%.1f%%)\n"
    base_mops def_mops (100.0 *. overhead);
  let all_clean = List.for_all CB.cell_clean cells in
  let pair_clean = CB.cell_clean slow_off && CB.cell_clean slow_on in
  let ok =
    all_clean && pair_clean && slow_ratio >= 2.0 && overhead <= 0.05
  in
  (match bench_json with
  | None -> ()
  | Some path ->
    let b = Buffer.create 4096 in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"suite\": \"chaos\", \"quick\": %b, \"seed\": %d,\n" quick seed);
    Buffer.add_string b "  \"cells\": [\n";
    List.iteri
      (fun i c ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"loss\": %g, \"partition\": \"%s\", \"hedge\": %b, \
              \"rate_mops\": %.4f, \"issued\": %d, \"ok\": %d, \
              \"availability\": %.6f, \"event_availability\": %.6f, \
              \"goodput_mops\": %.4f, \"get_p99_ns\": %.0f, \
              \"event_get_p99_ns\": %.0f, \"retries\": %d, \"timeouts\": \
              %d, \"hedges\": %d, \"hedge_wins\": %d, \"late_acks\": %d, \
              \"routed_around\": %d, \"suspicions\": %d, \"dedup_hits\": \
              %d, \"checked\": %d, \"residue\": %d, \"mismatches\": %d, \
              \"reads_checked\": %d, \"violations\": %d}%s\n"
             c.CB.cc_loss
             (CB.partition_name c.CB.cc_partition)
             c.CB.cc_hedge c.CB.cc_rate_mops c.CB.cc_issued c.CB.cc_ok
             c.CB.cc_availability c.CB.cc_event_availability
             c.CB.cc_goodput_mops c.CB.cc_get_p99 c.CB.cc_event_get_p99
             c.CB.cc_retries c.CB.cc_timeouts c.CB.cc_hedges
             c.CB.cc_hedge_wins c.CB.cc_late_acks c.CB.cc_routed_around
             c.CB.cc_suspicions c.CB.cc_dedup_hits c.CB.cc_checked
             c.CB.cc_residue
             (List.length c.CB.cc_mismatches)
             c.CB.cc_reads_checked
             (List.length c.CB.cc_violations)
             (if i = List.length cells - 1 then "" else ",")))
      cells;
    Buffer.add_string b "  ],\n";
    Buffer.add_string b
      (Printf.sprintf
         "  \"fail_slow\": {\"factor\": 10.0, \"rate_mops\": %.4f, \
          \"event_get_p99_ns_no_hedge\": %.0f, \
          \"event_get_p99_ns_hedged\": %.0f, \"ratio\": %.3f, \"hedges\": \
          %d, \"hedge_wins\": %d, \"suspicions\": %d},\n"
         slow_on.CB.cc_rate_mops slow_off.CB.cc_event_get_p99
         slow_on.CB.cc_event_get_p99 slow_ratio slow_on.CB.cc_hedges
         slow_on.CB.cc_hedge_wins slow_on.CB.cc_suspicions);
    Buffer.add_string b
      (Printf.sprintf
         "  \"overhead\": {\"default_mops\": %.4f, \"defensive_mops\": \
          %.4f, \"fraction\": %.4f},\n"
         base_mops def_mops overhead);
    Buffer.add_string b
      (Printf.sprintf "  \"wall_s\": %.2f, \"pass\": %b\n}"
         (Unix.gettimeofday () -. wall_t0)
         ok);
    json_write path (Buffer.contents b));
  if not ok then begin
    Printf.eprintf "ckv chaos: FAILED acceptance checks\n";
    exit 1
  end

let run_list () =
  print_endline "experiments:";
  List.iter
    (fun e ->
      Printf.printf "  %-12s %s\n" e.Harness.Experiments.id
        e.Harness.Experiments.title)
    Harness.Experiments.all;
  print_endline "stores:";
  List.iter
    (fun n -> Printf.printf "  %s\n" n)
    (store_names Harness.Stores.default)

(* --------------------------------- wiring -------------------------------- *)

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use the reduced scale.")

let bench_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench-json" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable benchmark summary (throughput, tail \
           latency, wall-clock) to $(docv).")

let store_arg =
  Arg.(
    value
    & opt string "ChameleonDB"
    & info [ "store" ] ~docv:"NAME" ~doc:"Store to drive, or $(b,all).")

let threads_arg =
  Arg.(value & opt int 8 & info [ "threads" ] ~docv:"N" ~doc:"Thread count.")

let cache_mb_arg =
  Arg.(
    value & opt int 0
    & info [ "cache-mb" ] ~docv:"MB"
        ~doc:
          "ChameleonDB DRAM read-cache capacity in MB (0 = disabled; \
           baselines never have one).")

let load_cmd =
  let keys =
    Arg.(
      value & opt int 200_000
      & info [ "keys" ] ~docv:"N" ~doc:"Unique keys to load.")
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Load unique keys and report put performance")
    Term.(const run_load $ store_arg $ keys $ threads_arg $ quick_arg)

let ycsb_cmd =
  let mix =
    Arg.(
      value & opt string "B"
      & info [ "mix" ] ~docv:"MIX" ~doc:"LOAD, A, B, C, D, E or F.")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:"Workload generator seed (default: the generator's own).")
  in
  let ops =
    Arg.(
      value & opt int 50_000
      & info [ "ops" ] ~docv:"N" ~doc:"Requests after the load phase.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ]
          ~docv:"FILE"
          ~doc:
            "Record spans during the measured run and write Chrome \
             trace-event JSON to $(docv) (open in chrome://tracing or \
             Perfetto).  With $(b,--store all), one file per store, \
             prefixed with the store name.")
  in
  Cmd.v
    (Cmd.info "ycsb" ~doc:"Run a YCSB workload")
    Term.(
      const run_ycsb $ store_arg $ mix $ ops $ threads_arg $ seed $ trace
      $ cache_mb_arg $ quick_arg $ bench_json_arg)

let crash_cmd =
  let seeds =
    Arg.(
      value & opt int 3
      & info [ "seeds" ] ~docv:"N" ~doc:"Sweep seeds 1..$(docv).")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:"Use exactly this seed (overrides $(b,--seeds)).")
  in
  let ops =
    Arg.(
      value & opt int 4_000
      & info [ "ops" ] ~docv:"N" ~doc:"Workload operations per case.")
  in
  let universe =
    Arg.(
      value & opt int 400
      & info [ "universe" ] ~docv:"N" ~doc:"Distinct keys in the workload.")
  in
  let per_site =
    Arg.(
      value & opt int 3
      & info [ "per-site" ] ~docv:"N"
          ~doc:"Crash points per fault site (first/middle/last).")
  in
  let no_tear =
    Arg.(
      value & flag
      & info [ "no-tear" ]
          ~doc:"Disable torn 256B writes inside the unpersisted tail.")
  in
  let site =
    Arg.(
      value
      & opt (some string) None
      & info [ "site" ] ~docv:"SITE"
          ~doc:
            "Pinpoint one fault site (e.g. $(b,flush), \
             $(b,upper-compaction), $(b,gc), $(b,manifest-update)) instead \
             of sweeping; combine with $(b,--at) and $(b,--seed) to replay \
             a reported violation.")
  in
  let at =
    Arg.(
      value & opt int 0
      & info [ "at" ] ~docv:"N"
          ~doc:"With $(b,--site): crash at the N-th persist event there.")
  in
  let recovery_at =
    Arg.(
      value
      & opt (some int) None
      & info [ "recovery-at" ] ~docv:"N"
          ~doc:
            "Also crash recovery at its N-th persist event, then recover \
             again (idempotence check).")
  in
  let export =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"DIR"
          ~doc:
            "Re-run violating cases with tracing and write Chrome-trace \
             JSON files into $(docv).")
  in
  Cmd.v
    (Cmd.info "crash"
       ~doc:
         "Crash fault-injection sweep: verify recovery correctness at \
          every fault site")
    Term.(
      const run_crash $ store_arg $ seeds $ seed $ ops $ universe $ per_site
      $ no_tear $ site $ at $ recovery_at $ export $ cache_mb_arg
      $ quick_arg)

let scrub_cmd =
  let keys =
    Arg.(
      value & opt int 20_000
      & info [ "keys" ] ~docv:"N" ~doc:"Unique keys to load before injecting.")
  in
  let faults =
    Arg.(
      value & opt int 16
      & info [ "faults" ] ~docv:"N"
          ~doc:"Media faults to inject into live log records.")
  in
  let budget =
    Arg.(
      value
      & opt int (256 * 1024)
      & info [ "budget" ] ~docv:"BYTES" ~doc:"Scrub byte budget per pass.")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Fault-placement seed.")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Inject media faults into a loaded store, run the scrubber, and \
          verify every fault is detected and contained")
    Term.(
      const run_scrub $ store_arg $ keys $ faults $ budget $ seed $ quick_arg)

let media_cmd =
  let seeds =
    Arg.(
      value
      & opt (list int) [ 1; 11; 101 ]
      & info [ "seeds" ] ~docv:"S1,S2,.." ~doc:"Sweep seeds.")
  in
  let ops =
    Arg.(
      value & opt int 3_000
      & info [ "ops" ] ~docv:"N" ~doc:"Workload operations per case.")
  in
  let universe =
    Arg.(
      value & opt int 300
      & info [ "universe" ] ~docv:"N" ~doc:"Distinct keys in the workload.")
  in
  let faults =
    Arg.(
      value & opt int 12
      & info [ "faults" ] ~docv:"N" ~doc:"Media faults injected per case.")
  in
  Cmd.v
    (Cmd.info "media"
       ~doc:
         "Media-fault sweep: seeded bit rot and poisoned units across all \
          stores; no store may serve corrupted data as a successful read")
    Term.(
      const run_media $ store_arg $ seeds $ ops $ universe $ faults
      $ quick_arg)

let bench_cmd =
  let ids =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Reproduce the paper's tables and figures")
    Term.(const run_bench $ ids $ quick_arg)

let trace_cmd =
  let record =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"FILE" ~doc:"Record a trace to FILE.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE" ~doc:"Replay the trace in FILE.")
  in
  let mix =
    Arg.(
      value & opt string "A"
      & info [ "mix" ] ~docv:"MIX" ~doc:"Mix to record (LOAD|A|B|C|D|F).")
  in
  let ops =
    Arg.(
      value & opt int 50_000
      & info [ "ops" ] ~docv:"N" ~doc:"Operations to record.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Record or replay workload traces")
    Term.(
      const run_trace $ record $ replay $ mix $ ops $ store_arg $ quick_arg)

let inspect_cmd =
  let keys =
    Arg.(
      value & opt int 200_000
      & info [ "keys" ] ~docv:"N" ~doc:"Unique keys to load before dumping.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Load a store and dump its internal state")
    Term.(const run_inspect $ keys $ quick_arg)

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/ckv.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let max_requests =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-requests" ] ~docv:"N"
          ~doc:"Exit after answering $(docv) requests (default: serve \
                forever).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a store over a Unix-domain socket (wire protocol)")
    Term.(
      const run_serve $ store_arg $ socket_arg $ max_requests $ cache_mb_arg
      $ quick_arg)

let client_cmd =
  let script =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"OP"
          ~doc:
            "Operations, in order: $(b,put KEY VALUE), $(b,get KEY), \
             $(b,del KEY).")
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Send requests to a running ckv serve")
    Term.(const run_client $ socket_arg $ script)

let cluster_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Deterministic seed (load streams and crash tearing).")
  in
  let loss =
    Arg.(
      value & opt float 0.0
      & info [ "loss" ] ~docv:"P"
          ~doc:
            "Run the failover/rebalance scenarios under an i.i.d. frame \
             drop probability of $(docv) (defensive router policy, \
             partition-aware audit).")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run the cluster suite: scaling curve, node kill + rejoin, live \
          shard migration; exits non-zero if any divergence, misroute or \
          unfinished recovery is detected")
    Term.(const run_cluster $ quick_arg $ seed $ loss $ bench_json_arg)

let chaos_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Deterministic seed (fault injection, load streams, backoff \
             jitter).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run the network chaos suite: loss x partition x hedge sweep \
          with the partition-aware consistency audit, the fail-slow \
          hedging pair and the zero-fault overhead check; exits non-zero \
          if any acked write is lost, any stale/phantom read is observed, \
          hedging fails to halve the fail-slow tail, or the defensive \
          policy costs more than 5% on a clean network")
    Term.(const run_chaos $ quick_arg $ seed $ bench_json_arg)

let mph_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Deterministic seed (MPH construction and the get streams).")
  in
  Cmd.v
    (Cmd.info "mph"
       ~doc:
         "Perfect-hash last level vs Bloom+probe: get p50/p99, device \
          reads per get, DRAM per key and MPH construction cost; exits \
          non-zero if the MPH variant loses its one-read property or its \
          tail-latency edge")
    Term.(const run_mph $ seed $ quick_arg $ bench_json_arg)

let batch_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Deterministic seed (load streams and arrival schedules).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "End-to-end write batching: Hybrid-Viper saturation vs client \
          batch size, server group commit on unbatched clients, and the \
          restart-time cost of the volatile index; exits non-zero if \
          batching fails to scale throughput (>=1.5x at batch 16) or the \
          restart gap inverts")
    Term.(const run_batch $ seed $ quick_arg $ bench_json_arg)

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List experiments and stores")
    Term.(const run_list $ const ())

let () =
  let info =
    Cmd.info "ckv" ~version:"1.0.0"
      ~doc:"ChameleonDB (EuroSys'21) reproduction driver"
  in
  exit (Cmd.eval (Cmd.group info
       [ load_cmd; ycsb_cmd; bench_cmd; crash_cmd; scrub_cmd; media_cmd;
         mph_cmd; batch_cmd; trace_cmd; inspect_cmd; serve_cmd; client_cmd;
         cluster_cmd; chaos_cmd; list_cmd ]))
